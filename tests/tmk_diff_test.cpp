#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tmk/diff.hpp"

namespace tmkgm::tmk {
namespace {

constexpr std::size_t kPage = 4096;

std::vector<std::byte> make_page(std::byte fill) {
  return std::vector<std::byte>(kPage, fill);
}

TEST(Diff, IdenticalPagesProduceEmptyDiff) {
  auto a = make_page(std::byte{1});
  auto b = make_page(std::byte{1});
  EXPECT_TRUE(encode_diff(a.data(), b.data(), kPage).empty());
}

TEST(Diff, SingleWordRoundTrip) {
  auto twin = make_page(std::byte{0});
  auto current = twin;
  current[100] = std::byte{0xaa};
  const auto diff = encode_diff(current.data(), twin.data(), kPage);
  EXPECT_FALSE(diff.empty());
  EXPECT_EQ(diff_modified_bytes(diff), 4u);  // word granularity

  auto target = make_page(std::byte{0});
  apply_diff(target.data(), diff, kPage);
  EXPECT_EQ(target[100], std::byte{0xaa});
  EXPECT_EQ(target[104], std::byte{0});
}

TEST(Diff, ContiguousRunCoalesces) {
  auto twin = make_page(std::byte{0});
  auto current = twin;
  for (std::size_t i = 256; i < 512; ++i) current[i] = std::byte{7};
  const auto diff = encode_diff(current.data(), twin.data(), kPage);
  // One run of 256 bytes: 4 header bytes + 256 payload.
  EXPECT_EQ(diff.size(), 4u + 256u);
  EXPECT_EQ(diff_modified_bytes(diff), 256u);
}

TEST(Diff, MultipleRuns) {
  auto twin = make_page(std::byte{0});
  auto current = twin;
  current[0] = std::byte{1};
  current[2048] = std::byte{2};
  current[4092] = std::byte{3};
  const auto diff = encode_diff(current.data(), twin.data(), kPage);
  auto target = make_page(std::byte{0});
  apply_diff(target.data(), diff, kPage);
  EXPECT_EQ(std::memcmp(target.data(), current.data(), kPage), 0);
  EXPECT_EQ(diff_modified_bytes(diff), 12u);
}

TEST(Diff, WholePageModified) {
  auto twin = make_page(std::byte{0});
  auto current = make_page(std::byte{0xff});
  const auto diff = encode_diff(current.data(), twin.data(), kPage);
  EXPECT_EQ(diff_modified_bytes(diff), kPage);
  auto target = make_page(std::byte{0});
  apply_diff(target.data(), diff, kPage);
  EXPECT_EQ(std::memcmp(target.data(), current.data(), kPage), 0);
}

TEST(Diff, ConcurrentWritersMergeDisjointWords) {
  // Two writers, one twin, disjoint words: applying both diffs in either
  // order merges all writes (the multiple-writer protocol's core claim).
  auto twin = make_page(std::byte{0});
  auto writer_a = twin;
  auto writer_b = twin;
  writer_a[0] = std::byte{0xa};
  writer_b[8] = std::byte{0xb};
  const auto diff_a = encode_diff(writer_a.data(), twin.data(), kPage);
  const auto diff_b = encode_diff(writer_b.data(), twin.data(), kPage);

  auto merged1 = twin;
  apply_diff(merged1.data(), diff_a, kPage);
  apply_diff(merged1.data(), diff_b, kPage);
  auto merged2 = twin;
  apply_diff(merged2.data(), diff_b, kPage);
  apply_diff(merged2.data(), diff_a, kPage);

  EXPECT_EQ(std::memcmp(merged1.data(), merged2.data(), kPage), 0);
  EXPECT_EQ(merged1[0], std::byte{0xa});
  EXPECT_EQ(merged1[8], std::byte{0xb});
}

TEST(Diff, RunEndingAtPageBoundary) {
  auto twin = make_page(std::byte{0});
  auto current = twin;
  for (std::size_t i = kPage - 8; i < kPage; ++i) current[i] = std::byte{9};
  const auto diff = encode_diff(current.data(), twin.data(), kPage);
  auto target = make_page(std::byte{0});
  apply_diff(target.data(), diff, kPage);
  EXPECT_EQ(std::memcmp(target.data(), current.data(), kPage), 0);
}

}  // namespace
}  // namespace tmkgm::tmk
