#include <algorithm>
#include <vector>

#include "apps/apps.hpp"
#include "tmk/shared_array.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace tmkgm::apps {

namespace {

constexpr int kQueueLock = 1;
constexpr int kBestLock = 2;
constexpr double kWorkPerNode = 40.0;   // tree-node expansion cost
constexpr double kPollBackoffWork = 4000.0;
constexpr int kMaxCities = 24;

/// Deterministic symmetric distance matrix, identical on every proc.
std::vector<std::int32_t> make_distances(int cities, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> d(static_cast<std::size_t>(cities) *
                              static_cast<std::size_t>(cities));
  for (int i = 0; i < cities; ++i) {
    for (int j = i + 1; j < cities; ++j) {
      const auto v = static_cast<std::int32_t>(1 + rng.next_below(99));
      d[static_cast<std::size_t>(i * cities + j)] = v;
      d[static_cast<std::size_t>(j * cities + i)] = v;
    }
  }
  return d;
}

struct Searcher {
  int cities;
  const std::int32_t* dist;
  std::vector<std::int32_t> min_edge;  // cheapest edge per city (bound)
  std::uint64_t nodes_visited = 0;

  explicit Searcher(int n, const std::int32_t* d) : cities(n), dist(d) {
    min_edge.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::int32_t best = INT32_MAX;
      for (int j = 0; j < n; ++j) {
        if (j != i) best = std::min(best, dist[i * n + j]);
      }
      min_edge[static_cast<std::size_t>(i)] = best;
    }
  }

  std::int32_t lower_bound(std::int32_t len, std::uint32_t visited) const {
    std::int32_t bound = len;
    for (int c = 0; c < cities; ++c) {
      if ((visited & (1u << c)) == 0) bound += min_edge[static_cast<std::size_t>(c)];
    }
    // The return edge to city 0 is still pending too.
    bound += min_edge[0];
    return bound;
  }

  /// Greedy nearest-neighbour tour: the initial upper bound.
  std::int32_t greedy() const {
    std::int32_t total = 0;
    std::uint32_t visited = 1;
    int at = 0;
    for (int step = 1; step < cities; ++step) {
      std::int32_t best = INT32_MAX;
      int next = -1;
      for (int c = 1; c < cities; ++c) {
        if ((visited & (1u << c)) == 0 && dist[at * cities + c] < best) {
          best = dist[at * cities + c];
          next = c;
        }
      }
      total += best;
      visited |= 1u << next;
      at = next;
    }
    return total + dist[at * cities + 0];
  }

  /// Depth-first branch & bound from a prefix; returns the best complete
  /// tour length found (or INT32_MAX), pruning against `best`.
  std::int32_t solve(std::vector<int>& tour, std::uint32_t visited,
                     std::int32_t len, std::int32_t best) {
    ++nodes_visited;
    const int depth = static_cast<int>(tour.size());
    if (depth == cities) {
      return len + dist[tour.back() * cities + 0];
    }
    if (lower_bound(len, visited) >= best) return INT32_MAX;
    std::int32_t found = INT32_MAX;
    for (int c = 1; c < cities; ++c) {
      if (visited & (1u << c)) continue;
      const std::int32_t nlen = len + dist[tour.back() * cities + c];
      if (nlen >= best) continue;
      tour.push_back(c);
      const auto sub = solve(tour, visited | (1u << c), nlen,
                             std::min(best, found));
      tour.pop_back();
      found = std::min(found, sub);
    }
    return found;
  }
};

}  // namespace

// Parallel branch & bound: partial tours shorter than split_depth live on a
// lock-protected shared queue; longer prefixes are solved to completion
// locally, publishing improved bounds under the best-tour lock. This is the
// lock-dominated workload of the paper's Table of app characteristics.
AppResult tsp(tmk::Tmk& tmk, const TspParams& p) {
  TMKGM_CHECK(p.cities >= 4 && p.cities <= kMaxCities);
  const int cities = p.cities;
  const auto dist = make_distances(cities, p.seed);
  Searcher searcher(cities, dist.data());

  // Shared state: queue of fixed-size records + cursors + best bound.
  const std::size_t rec_ints = static_cast<std::size_t>(cities) + 2;
  std::size_t cap = 1;
  for (int d = 1; d < p.split_depth; ++d) {
    cap *= static_cast<std::size_t>(cities);
  }
  cap = cap * 4 + 64;
  auto queue =
      tmk::SharedArray<std::int32_t>::alloc(tmk, cap * rec_ints);
  auto ctrl = tmk::SharedArray<std::int32_t>::alloc(tmk, 4);
  // ctrl[0]=head, ctrl[1]=tail, ctrl[2]=active workers, ctrl[3]=best.

  if (tmk.proc_id() == 0) {
    tmk.lock_acquire(kQueueLock);
    // Seed: tour {0}.
    auto rec = queue.span_rw(0, rec_ints);
    rec[0] = 1;  // depth
    rec[1] = 0;  // length
    rec[2] = 0;  // city 0
    ctrl.put(0, 0);
    ctrl.put(1, 1);
    ctrl.put(2, 0);
    tmk.lock_release(kQueueLock);
    tmk.lock_acquire(kBestLock);
    ctrl.put(3, searcher.greedy());
    tmk.lock_release(kBestLock);
  }
  tmk.barrier(0);
  const SimTime t0 = tmk.node().now();

  double pending_work = 0.0;
  std::uint64_t last_nodes = 0;
  auto flush_work = [&] {
    pending_work +=
        static_cast<double>(searcher.nodes_visited - last_nodes) *
        kWorkPerNode;
    last_nodes = searcher.nodes_visited;
    if (pending_work > 0) {
      tmk.compute_work(pending_work);
      pending_work = 0;
    }
  };

  while (true) {
    // Take a record (or learn that the search is over).
    tmk.lock_acquire(kQueueLock);
    const auto head = ctrl.get(0);
    const auto tail = ctrl.get(1);
    const auto active = ctrl.get(2);
    std::vector<std::int32_t> rec;
    if (head < tail) {
      auto ro = queue.span_ro(static_cast<std::size_t>(head) * rec_ints,
                              rec_ints);
      rec.assign(ro.begin(), ro.end());
      ctrl.put(0, head + 1);
      ctrl.put(2, active + 1);
    }
    tmk.lock_release(kQueueLock);

    if (rec.empty()) {
      if (active == 0 && head >= tail) break;  // drained and quiet: done
      tmk.compute_work(kPollBackoffWork);
      continue;
    }

    const int depth = rec[0];
    const std::int32_t len = rec[1];
    std::vector<int> tour(rec.begin() + 2, rec.begin() + 2 + depth);
    std::uint32_t visited = 0;
    for (int c : tour) visited |= 1u << c;

    tmk.lock_acquire(kBestLock);
    std::int32_t best = ctrl.get(3);
    tmk.lock_release(kBestLock);

    if (depth < p.split_depth) {
      // Expand one level back onto the shared queue.
      std::vector<std::vector<std::int32_t>> children;
      for (int c = 1; c < cities; ++c) {
        if (visited & (1u << c)) continue;
        const std::int32_t nlen = len + dist[static_cast<std::size_t>(
                                      tour.back() * cities + c)];
        ++searcher.nodes_visited;
        if (searcher.lower_bound(nlen, visited | (1u << c)) >= best) continue;
        std::vector<std::int32_t> child(rec_ints, 0);
        child[0] = depth + 1;
        child[1] = nlen;
        for (int i = 0; i < depth; ++i) child[2 + i] = tour[static_cast<std::size_t>(i)];
        child[2 + depth] = c;
        children.push_back(std::move(child));
      }
      flush_work();
      tmk.lock_acquire(kQueueLock);
      auto t = ctrl.get(1);
      TMKGM_CHECK_MSG(static_cast<std::size_t>(t) + children.size() <= cap,
                      "TSP queue overflow; raise capacity");
      for (const auto& child : children) {
        auto w = queue.span_rw(static_cast<std::size_t>(t) * rec_ints,
                               rec_ints);
        std::copy(child.begin(), child.end(), w.begin());
        ++t;
      }
      ctrl.put(1, t);
      ctrl.put(2, ctrl.get(2) - 1);
      tmk.lock_release(kQueueLock);
    } else {
      // Solve the subtree locally, then publish any improvement.
      const auto found = searcher.solve(tour, visited, len, best);
      flush_work();
      tmk.lock_acquire(kBestLock);
      if (found < ctrl.get(3)) ctrl.put(3, found);
      tmk.lock_release(kBestLock);
      tmk.lock_acquire(kQueueLock);
      ctrl.put(2, ctrl.get(2) - 1);
      tmk.lock_release(kQueueLock);
    }
  }

  tmk.barrier(1);
  const SimTime elapsed = tmk.node().now() - t0;
  std::int64_t best = 0;
  tmk.lock_acquire(kBestLock);
  best = ctrl.get(3);
  tmk.lock_release(kBestLock);
  tmk.barrier(2);
  return {static_cast<double>(best), elapsed};
}

std::int64_t tsp_serial(const TspParams& p) {
  TMKGM_CHECK(p.cities >= 4 && p.cities <= kMaxCities);
  const auto dist = make_distances(p.cities, p.seed);
  Searcher searcher(p.cities, dist.data());
  std::vector<int> tour{0};
  const auto greedy = searcher.greedy();
  const auto found = searcher.solve(tour, 1u, 0, greedy);
  return std::min<std::int32_t>(greedy, found);
}

}  // namespace tmkgm::apps
