// Home-based lazy release consistency (HLRC).
//
// Every page has a home — the same round-robin `home_chunk_pages` striping
// that assigns base-copy managers under LRC — and the home's copy is
// authoritative:
//
//  - At each interval close the writer diffs every dirty page against its
//    twin, frees the twin (nothing is latent in HLRC), and eagerly flushes
//    the diffs to the homes (Op::DiffFlush, batched per home). The release
//    does not complete until every home has acked, so any write notice a
//    peer can ever learn about is already applied at the home — exactly
//    the direct-deposit pattern the paper's FAST/GM remote-put models.
//  - Homes apply incoming diffs immediately, in interrupt context. Arrival
//    order is consistent with happened-before: ordered writers are
//    serialized by the flush-ack-before-release rule, and concurrent
//    writers touch disjoint words under data-race freedom.
//  - Acquirers receive only write-notice page ids through the unchanged
//    interval piggyback machinery; a fault fetches the whole page from
//    home (one round trip regardless of the number of writers). A home
//    page is never invalidated: its applied clock already covers every
//    notice by the time the notice arrives.
//
// Protocol memory is just the interval records — no diff store, no
// retained twins — so GC has nothing protocol-private to discard.
#pragma once

#include <vector>

#include "proto/protocol.hpp"

namespace tmkgm::proto {

class Hlrc final : public Protocol {
 public:
  using Protocol::Protocol;

  Kind kind() const override { return Kind::Hlrc; }
  void on_read_fault(tmk::PageId page) override;
  void on_write_fault(tmk::PageId page) override;
  void on_interval_close(std::uint32_t vt,
                         std::span<const tmk::PageId> pages) override;
  void on_interval_closed() override;
  void on_gc_discard(std::uint64_t floor_epoch) override;
  std::size_t private_bytes() const override { return 0; }
  bool handle_request(tmk::Op op, const sub::RequestCtx& ctx,
                      WireReader& r) override;

 private:
  /// Brings the page's local copy up to date with everything we are
  /// required to see: base-copy fetch when unmapped, whole-page refetch
  /// from home while write notices are pending.
  void make_current(tmk::PageId page);
  /// Whole-page refetch from the home of an already-mapped page; an open
  /// twin's uncommitted local writes are merged over the fetched copy
  /// (multiple-writer: disjoint words under data-race freedom).
  void refetch_from_home(tmk::PageId page);
  void flush_staged();
  void handle_diff_flush(const sub::RequestCtx& ctx, WireReader& r);

  /// Diffs encoded at interval close, awaiting the post-close flush.
  struct Staged {
    tmk::PageId page;
    std::uint32_t vt;
    std::vector<std::byte> diff;
  };
  std::vector<Staged> staged_;
};

}  // namespace tmkgm::proto
