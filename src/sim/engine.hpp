// Deterministic discrete-event engine with cooperatively scheduled nodes.
//
// This is the hardware substitution at the bottom of the whole repository:
// the paper's 16-node Myrinet cluster becomes N simulated nodes, each running
// its program on a dedicated host thread, with exactly one thread runnable at
// a time. A single event queue in virtual time carries all network and timer
// activity. Determinism: ties in the queue break by sequence number, and all
// randomness comes from the engine's seeded Rng.
//
// Threading protocol. The engine thread (the caller of run()) executes event
// callbacks. A node runs only while the engine has handed it the baton via a
// pair of binary semaphores; handing the baton back and forth is the only
// inter-thread communication, so user code needs no locks. Event callbacks
// never run on node threads.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tmkgm::obs {
class Tracer;
}

namespace tmkgm::sim {

class Node;

/// Thrown by run() when nodes are still blocked but no live events remain —
/// i.e. the simulated system has deadlocked.
class SimDeadlock : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedules fn at absolute virtual time t (must be >= now()).
  EventHandle at(SimTime t, std::function<void()> fn);

  /// Schedules fn `delay` after now().
  EventHandle after(SimTime delay, std::function<void()> fn);

  /// Creates a node; its program starts at virtual time 0 when run() is
  /// called. Nodes must all be added before run().
  Node& add_node(std::string name, std::function<void(Node&)> program);

  std::size_t node_count() const { return nodes_.size(); }
  Node& node(int id);

  /// Runs until every node program has finished. Throws SimDeadlock if the
  /// system wedges, and rethrows the first exception escaping a node
  /// program.
  void run();

  /// The node whose code is executing, or nullptr in event/engine context.
  Node* current_node() const { return current_; }

  Rng& rng() { return rng_; }

  std::uint64_t events_processed() const { return events_processed_; }

  /// Optional guard against runaway simulations (0 = unlimited).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Compute coalescing: when on (default), a node's compute() may advance
  /// virtual time in place — no baton handoff — provided no live event is
  /// scheduled at or before the quantum's end. Virtual-time results are
  /// identical either way; off forces the classic wake-event path (used by
  /// benchmarks and the determinism regression test to compare both).
  void set_compute_coalescing(bool on) { compute_coalescing_ = on; }
  bool compute_coalescing() const { return compute_coalescing_; }

  /// Structured trace sink (obs/trace.hpp); null = tracing off. Emit
  /// sites across the stack guard on tracing(), which costs one pointer
  /// load and a never-taken branch when no tracer is installed.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }
  bool tracing() const { return tracer_ != nullptr; }

  /// Compute-warp hook (fault injection: slow / paused nodes). When set,
  /// every Node::compute quantum is mapped through it: (node, now, dur) ->
  /// warped dur. Unset (the default) costs nothing on the compute path
  /// beyond one branch.
  using ComputeWarp = std::function<SimTime(int node, SimTime now, SimTime dur)>;
  void set_compute_warp(ComputeWarp warp) { compute_warp_ = std::move(warp); }

 private:
  friend class Node;
  friend class Condition;

  enum class Resume : std::uint8_t {
    Start,
    Signal,
    Timeout,
    ComputeDone,
    Interrupt,
    Abort,
  };

  /// Hands the baton to `n` (which must be blocked) and waits for it to
  /// yield back or finish. Callable from engine context only, possibly
  /// nested under an earlier transfer (a node that yielded mid-slice).
  void transfer_to(Node& n, Resume reason);

  /// Called from `n`'s own context (it holds the baton, so the engine
  /// thread is parked inside transfer_to and engine state is safe to
  /// touch). Grants the node a quantum of `dur` by advancing now_ without
  /// a handoff, provided no live event precedes the quantum's end (strict:
  /// an event at exactly now_+dur would have run before the wake event it
  /// replaces, and must still do so). Returns false when ineligible.
  bool try_advance_inline(Node& n, SimTime dur);

  void rethrow_node_failure();

  SimTime now_ = 0;
  EventQueue queue_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Node* current_ = nullptr;
  Rng rng_;
  bool running_ = false;
  bool compute_coalescing_ = true;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_limit_ = 0;
  std::exception_ptr node_failure_;
  obs::Tracer* tracer_ = nullptr;
  ComputeWarp compute_warp_;
};

}  // namespace tmkgm::sim
