// Virtual-time units used throughout the simulator.
//
// All simulated time is kept in signed 64-bit nanoseconds. Helper literals
// convert from the units the paper quotes (µs for latencies, MB/s for
// bandwidths) without floating-point surprises at call sites.
#pragma once

#include <cstdint>

namespace tmkgm {

/// Simulated time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

constexpr SimTime kNever = INT64_MAX;

constexpr SimTime nanoseconds(std::int64_t n) { return n; }
constexpr SimTime microseconds(double us) {
  return static_cast<SimTime>(us * 1e3);
}
constexpr SimTime milliseconds(double ms) {
  return static_cast<SimTime>(ms * 1e6);
}
constexpr SimTime seconds(double s) { return static_cast<SimTime>(s * 1e9); }

constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_s(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Time to move `bytes` at `bytes_per_us` (the natural unit for the paper's
/// MB/s numbers: 1 MB/s == 1 byte/µs).
constexpr SimTime transfer_time(std::uint64_t bytes, double bytes_per_us) {
  return static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_us *
                              1e3);
}

}  // namespace tmkgm
