// Stackful fiber for the engine's cooperative node scheduling.
//
// A node program runs on its own stack; switching between the engine and a
// node is a user-space register swap (~tens of ns) instead of the two
// kernel futex round-trips of the thread+semaphore baton. The switch is a
// hand-written x86-64 SysV context swap (callee-saved registers + mxcsr +
// x87 control word); other architectures fall back to ucontext, whose
// swapcontext() also saves the signal mask (one sigprocmask syscall each
// way — still cheaper and more deterministic than a futex handoff).
//
// Fibers carry no thread identity: a fiber may be switched in from any
// host thread (the sharded parallel engine resumes node fibers on worker
// threads, and on the main thread during serial phases). The only
// discipline required is LIFO: a fiber switches out to whoever last
// switched it in.
//
// Under AddressSanitizer and ThreadSanitizer the switch paths call the
// sanitizer fiber hooks, so sanitized builds see the stack changes instead
// of reporting false positives.
#pragma once

#include <cstddef>

namespace tmkgm::sim {

class Fiber {
 public:
  using Entry = void (*)(void*);

  Fiber() = default;
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Allocates the stack (guard page at the low end) and prepares the
  /// fiber to run entry(arg) at the first switch_in(). entry must never
  /// return: it finishes by calling switch_out() one final time.
  void init(std::size_t stack_bytes, Entry entry, void* arg);

  bool initialized() const { return stack_base_ != nullptr; }

  /// Transfers control from the calling context into the fiber. Returns
  /// when the fiber calls switch_out().
  void switch_in();

  /// Transfers control from inside the fiber back to the context that
  /// last called switch_in().
  void switch_out();

 private:
  // First-entry shim: closes the sanitizer's in-flight stack switch (and
  // records where the host stack lives) before running the user entry.
  static void entry_thunk(void* self);

  Entry entry_ = nullptr;
  void* arg_ = nullptr;
  void* fiber_sp_ = nullptr;   // fiber's saved stack pointer (or ucontext)
  void* return_sp_ = nullptr;  // host's saved stack pointer (or ucontext)
  void* stack_base_ = nullptr;
  std::size_t stack_bytes_ = 0;
  bool used_mmap_ = false;
#if defined(__x86_64__)
  static constexpr bool kUsesUcontext = false;
#else
  static constexpr bool kUsesUcontext = true;
#endif
  // Sanitizer bookkeeping (no-ops in plain builds).
  void* tsan_fiber_ = nullptr;
  void* tsan_return_ = nullptr;
  void* asan_fake_stack_host_ = nullptr;
  void* asan_fake_stack_fiber_ = nullptr;
  const void* asan_host_bottom_ = nullptr;
  std::size_t asan_host_size_ = 0;
};

}  // namespace tmkgm::sim
