#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/check.hpp"

namespace tmkgm::cluster {
namespace {

using sub::ConstBuf;
using sub::RequestCtx;

std::span<const std::byte> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string string_of(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

class SubstrateTest : public ::testing::TestWithParam<SubstrateKind> {
 protected:
  ClusterConfig base_config(int n) {
    ClusterConfig cfg;
    cfg.n_procs = n;
    cfg.kind = GetParam();
    cfg.event_limit = 50'000'000;
    return cfg;
  }
};

TEST_P(SubstrateTest, RequestReachesHandlerWithContext) {
  Cluster c(base_config(2));
  std::string got;
  int got_src = -1, got_origin = -1;
  c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte> payload) {
          got = string_of(payload);
          got_src = ctx.src;
          got_origin = ctx.origin;
          env.substrate.respond(ctx, bytes_of("ok"));
        });
    if (env.id == 0) {
      const std::string msg = "ping";
      const auto seq = env.substrate.send_request(0 + 1, bytes_of(msg));
      std::byte out[64];
      const auto len = env.substrate.recv_response(seq, out);
      EXPECT_EQ(string_of({out, len}), "ok");
    }
  });
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(got_src, 0);
  EXPECT_EQ(got_origin, 0);
}

TEST_P(SubstrateTest, DeferredResponse) {
  // The responder saves the ctx in the handler and answers much later —
  // the lock-held / barrier-root pattern.
  Cluster c(base_config(2));
  SimTime answered_at = -1;
  c.run([&](NodeEnv& env) {
    if (env.id == 1) {
      bool have_ctx = false;
      RequestCtx saved;
      env.substrate.set_request_handler(
          [&](const RequestCtx& ctx, std::span<const std::byte>) {
            saved = ctx;
            have_ctx = true;  // no respond here
          });
      while (!have_ctx) env.node.compute(microseconds(100.0));
      env.node.compute(milliseconds(30.0));  // "holding the lock"
      env.substrate.respond(saved, bytes_of("finally"));
    } else {
      env.substrate.set_request_handler(
          [](const RequestCtx&, std::span<const std::byte>) {});
      const auto seq = env.substrate.send_request(1, bytes_of("want"));
      std::byte out[64];
      const auto len = env.substrate.recv_response(seq, out);
      EXPECT_EQ(string_of({out, len}), "finally");
      answered_at = env.node.now();
    }
  });
  EXPECT_GE(answered_at, milliseconds(30.0));
}

TEST_P(SubstrateTest, ForwardChainRespondsToOrigin) {
  // 0 asks 1; 1 forwards to 2; 2 responds straight to 0 (the TreadMarks
  // lock-manager / probable-owner pattern).
  Cluster c(base_config(3));
  std::vector<int> handled_at;
  c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte> payload) {
          handled_at.push_back(env.id);
          if (env.id == 1) {
            ConstBuf body{payload.data(), payload.size()};
            env.substrate.forward(ctx, 2, std::span<const ConstBuf>(&body, 1));
          } else {
            EXPECT_EQ(env.id, 2);
            EXPECT_EQ(ctx.origin, 0);
            EXPECT_EQ(ctx.src, 1);
            env.substrate.respond(ctx, bytes_of("granted"));
          }
        });
    if (env.id == 0) {
      const auto seq = env.substrate.send_request(1, bytes_of("lock"));
      std::byte out[64];
      const auto len = env.substrate.recv_response(seq, out);
      EXPECT_EQ(string_of({out, len}), "granted");
    }
  });
  EXPECT_EQ(handled_at, (std::vector<int>{1, 2}));
}

TEST_P(SubstrateTest, ParallelRequestsAnyOrder) {
  // One node queries all peers in parallel and collects responses with
  // recv_response_any (the diff-fetch pattern).
  constexpr int kN = 5;
  Cluster c(base_config(kN));
  int collected = 0;
  c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte>) {
          // Respond after an id-dependent delay so arrivals interleave.
          const std::string body = "from" + std::to_string(env.id);
          env.substrate.respond(ctx, bytes_of(body));
        });
    if (env.id == 0) {
      std::vector<std::uint32_t> seqs;
      for (int p = 1; p < kN; ++p) {
        seqs.push_back(env.substrate.send_request(p, bytes_of("diffs?")));
      }
      std::vector<bool> seen(seqs.size(), false);
      for (std::size_t k = 0; k < seqs.size(); ++k) {
        std::byte out[64];
        std::size_t len = 0;
        const auto idx = env.substrate.recv_response_any(seqs, out, len);
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
        ++collected;
      }
    }
  });
  EXPECT_EQ(collected, kN - 1);
}

TEST_P(SubstrateTest, NonContiguousGather) {
  Cluster c(base_config(2));
  std::string got;
  c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte> payload) {
          got = string_of(payload);
          env.substrate.respond(ctx, bytes_of("k"));
        });
    if (env.id == 0) {
      const char a[] = {'h', 'e'};
      const char b[] = {'a', 'd'};
      const char d[] = {'e', 'r', 's'};
      ConstBuf iov[] = {{a, 2}, {b, 2}, {d, 3}};
      const auto seq = env.substrate.send_request(1, iov);
      std::byte out[8];
      env.substrate.recv_response(seq, out);
    }
  });
  EXPECT_EQ(got, "headers");
}

TEST_P(SubstrateTest, MaskDefersHandler) {
  Cluster c(base_config(2));
  SimTime handled = -1;
  c.run([&](NodeEnv& env) {
    if (env.id == 1) {
      env.substrate.set_request_handler(
          [&](const RequestCtx& ctx, std::span<const std::byte>) {
            handled = env.node.now();
            env.substrate.respond(ctx, bytes_of("late"));
          });
      env.substrate.mask_async();
      env.node.compute(milliseconds(20.0));  // critical section
      env.substrate.unmask_async();
      env.node.compute(milliseconds(5.0));
    } else {
      env.substrate.set_request_handler(
          [](const RequestCtx&, std::span<const std::byte>) {});
      env.node.compute(milliseconds(1.0));
      const auto seq = env.substrate.send_request(1, bytes_of("x"));
      std::byte out[64];
      env.substrate.recv_response(seq, out);
    }
  });
  EXPECT_GE(handled, milliseconds(20.0));
}

TEST_P(SubstrateTest, LargeMessagesRoundTrip) {
  // 20 KB payloads exercise UDP fragmentation and GM's big size classes.
  Cluster c(base_config(2));
  constexpr std::size_t kLen = 20000;
  bool checked = false;
  c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte> payload) {
          EXPECT_EQ(payload.size(), kLen);
          EXPECT_EQ(payload[12345], std::byte{0x7e});
          // Echo it back, same size.
          ConstBuf body{payload.data(), payload.size()};
          env.substrate.respond(ctx, std::span<const ConstBuf>(&body, 1));
        });
    if (env.id == 0) {
      std::vector<std::byte> big(kLen, std::byte{0x7e});
      ConstBuf body{big.data(), big.size()};
      const auto seq =
          env.substrate.send_request(1, std::span<const ConstBuf>(&body, 1));
      std::vector<std::byte> out(sub::kMaxMessage);
      const auto len = env.substrate.recv_response(seq, out);
      EXPECT_EQ(len, kLen);
      EXPECT_EQ(out[777], std::byte{0x7e});
      checked = true;
    }
  });
  EXPECT_TRUE(checked);
}

TEST_P(SubstrateTest, RequestStormAtOneNode) {
  // Everyone fires several requests at node 0 (barrier-arrival pattern);
  // all must be answered.
  constexpr int kN = 8;
  constexpr int kRounds = 5;
  Cluster c(base_config(kN));
  int served = 0;
  c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte>) {
          ++served;
          env.substrate.respond(ctx, bytes_of("y"));
        });
    if (env.id != 0) {
      for (int r = 0; r < kRounds; ++r) {
        const auto seq = env.substrate.send_request(0, bytes_of("arrive"));
        std::byte out[16];
        env.substrate.recv_response(seq, out);
      }
    }
  });
  EXPECT_EQ(served, (kN - 1) * kRounds);
}

TEST_P(SubstrateTest, StatsAreCounted) {
  Cluster c(base_config(2));
  auto result = c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte>) {
          env.substrate.respond(ctx, bytes_of("r"));
        });
    if (env.id == 0) {
      const auto seq = env.substrate.send_request(1, bytes_of("q"));
      std::byte out[16];
      env.substrate.recv_response(seq, out);
    }
  });
  EXPECT_EQ(result.substrate_stats[0].requests_sent, 1u);
  EXPECT_EQ(result.substrate_stats[1].responses_sent, 1u);
  EXPECT_EQ(result.substrate_stats[1].requests_handled, 1u);
  EXPECT_GT(result.substrate_stats[0].bytes_sent, 0u);
}

TEST_P(SubstrateTest, DeterministicAcrossRuns) {
  auto once = [&] {
    Cluster c(base_config(4));
    return c
        .run([&](NodeEnv& env) {
          env.substrate.set_request_handler(
              [&](const RequestCtx& ctx, std::span<const std::byte>) {
                env.substrate.respond(ctx, bytes_of("d"));
              });
          const int peer = (env.id + 1) % env.n_procs;
          for (int r = 0; r < 3; ++r) {
            const auto seq = env.substrate.send_request(peer, bytes_of("m"));
            std::byte out[16];
            env.substrate.recv_response(seq, out);
            env.compute_work(1000.0);
          }
        })
        .duration;
  };
  EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(AllTransports, SubstrateTest,
                         ::testing::Values(SubstrateKind::FastGm,
                                           SubstrateKind::UdpGm,
                                           SubstrateKind::FastIb),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "FAST/GM"
                                      ? "FastGm"
                                  : info.param == SubstrateKind::UdpGm
                                      ? "UdpGm"
                                      : "FastIb";
                         });

// ---- FAST/GM-specific behaviour ---------------------------------------

TEST(FastGmSpecific, RendezvousModeShipsLargeMessages) {
  ClusterConfig cfg;
  cfg.n_procs = 2;
  cfg.kind = SubstrateKind::FastGm;
  cfg.fastgm.rendezvous_large = true;
  Cluster c(cfg);
  constexpr std::size_t kLen = 20000;
  bool ok = false;
  auto result = c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte> payload) {
          EXPECT_EQ(payload.size(), kLen);
          ConstBuf body{payload.data(), payload.size()};
          env.substrate.respond(ctx, std::span<const ConstBuf>(&body, 1));
        });
    if (env.id == 0) {
      std::vector<std::byte> big(kLen, std::byte{0x11});
      ConstBuf body{big.data(), big.size()};
      const auto seq =
          env.substrate.send_request(1, std::span<const ConstBuf>(&body, 1));
      std::vector<std::byte> out(sub::kMaxMessage);
      EXPECT_EQ(env.substrate.recv_response(seq, out), kLen);
      ok = true;
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_GE(result.substrate_stats[0].rendezvous, 1u);  // the large request
  EXPECT_GE(result.substrate_stats[1].rendezvous, 1u);  // the large response
}

TEST(FastGmSpecific, RendezvousModePinsLessMemory) {
  auto receive_pool = [](bool rendezvous) {
    ClusterConfig cfg;
    cfg.n_procs = 8;
    cfg.kind = SubstrateKind::FastGm;
    cfg.fastgm.rendezvous_large = rendezvous;
    Cluster c(cfg);
    const auto pinned = c.run([](NodeEnv&) {}).pinned_bytes_node0;
    // The send pool (2n+8 buffers of 32 KB) is identical in both modes;
    // the paper's §2.2.2 saving concerns the pre-posted receive pools.
    return pinned - static_cast<std::size_t>(2 * 8 + 8) * 32768;
  };
  const auto full = receive_pool(false);
  const auto rdv = receive_pool(true);
  EXPECT_LT(rdv, full / 2);  // dropping sizes 13..15 saves most of the pool
}

TEST(FastGmSpecific, PrepostFootprintMatchesPaperFormula) {
  // Paper §2.2.2: ~64K*(n-1) async + ~64K sync (plus send pool overhead).
  ClusterConfig cfg;
  cfg.n_procs = 16;
  cfg.kind = SubstrateKind::FastGm;
  cfg.fastgm.outstanding_async = 1;
  Cluster c(cfg);
  const auto pinned = c.run([](NodeEnv&) {}).pinned_bytes_node0;
  const double receive_pool_kb =
      static_cast<double>(pinned) / 1024.0 -
      32.0 * (2 * 16 + 8);  // subtract the send pool (32KB each)
  const double expected_kb = 64.0 * 15 + 64.0;
  EXPECT_NEAR(receive_pool_kb, expected_kb, expected_kb * 0.15);
}

TEST(FastGmSpecific, TimerSchemeDelaysRequests) {
  auto request_latency = [](fastgm::AsyncScheme scheme) {
    ClusterConfig cfg;
    cfg.n_procs = 2;
    cfg.kind = SubstrateKind::FastGm;
    cfg.fastgm.async_scheme = scheme;
    cfg.fastgm.timer_period = milliseconds(2.0);
    Cluster c(cfg);
    SimTime latency = 0;
    c.run([&](NodeEnv& env) {
      env.substrate.set_request_handler(
          [&](const RequestCtx& ctx, std::span<const std::byte>) {
            env.substrate.respond(ctx, bytes_of("t"));
          });
      if (env.id == 0) {
        const SimTime t0 = env.node.now();
        const auto seq = env.substrate.send_request(1, bytes_of("q"));
        std::byte out[16];
        env.substrate.recv_response(seq, out);
        latency = env.node.now() - t0;
      } else {
        // Peer computes so only the async scheme can notice the request.
        env.node.compute(milliseconds(10.0));
      }
    });
    return latency;
  };
  const SimTime irq = request_latency(fastgm::AsyncScheme::Interrupt);
  const SimTime timer = request_latency(fastgm::AsyncScheme::Timer);
  EXPECT_LT(irq, microseconds(200.0));
  EXPECT_GT(timer, microseconds(500.0));  // up to a full timer period
}

TEST(FastGmSpecific, PollingSchemeTaxesCompute) {
  ClusterConfig cfg;
  cfg.n_procs = 2;
  cfg.kind = SubstrateKind::FastGm;
  cfg.fastgm.async_scheme = fastgm::AsyncScheme::PollingThread;
  Cluster c(cfg);
  SimTime spent = 0;
  c.run([&](NodeEnv& env) {
    const SimTime t0 = env.node.now();
    env.compute_work(1000.0);
    spent = env.node.now() - t0;
  });
  // polling_tax = 1.0 doubles application compute.
  const auto plain = static_cast<SimTime>(1000.0 * cfg.cost.app_ns_per_work);
  EXPECT_EQ(spent, 2 * plain);
}

// ---- UDP/GM-specific behaviour -----------------------------------------

TEST(UdpSpecific, RetransmissionSurvivesLoss) {
  ClusterConfig cfg;
  cfg.n_procs = 2;
  cfg.kind = SubstrateKind::UdpGm;
  cfg.cost.k_drop_prob = 0.3;  // heavy random loss
  cfg.seed = 23;
  Cluster c(cfg);
  int completed = 0;
  auto result = c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte>) {
          env.substrate.respond(ctx, bytes_of("ack"));
        });
    if (env.id == 0) {
      for (int r = 0; r < 20; ++r) {
        const auto seq = env.substrate.send_request(1, bytes_of("req"));
        std::byte out[16];
        const auto len = env.substrate.recv_response(seq, out);
        EXPECT_EQ(string_of({out, len}), "ack");
        ++completed;
      }
    }
  });
  EXPECT_EQ(completed, 20);
  EXPECT_GT(result.substrate_stats[0].retransmits, 0u);
}

TEST(UdpSpecific, DuplicateRequestsNotReExecuted) {
  // With loss, the handler may receive duplicates; at-most-once delivery
  // means side effects happen exactly once per seq.
  ClusterConfig cfg;
  cfg.n_procs = 2;
  cfg.kind = SubstrateKind::UdpGm;
  cfg.cost.k_drop_prob = 0.35;
  cfg.seed = 5;
  Cluster c(cfg);
  int executions = 0;
  int completed = 0;
  auto result = c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte>) {
          ++executions;
          env.substrate.respond(ctx, bytes_of("once"));
        });
    if (env.id == 0) {
      for (int r = 0; r < 15; ++r) {
        const auto seq = env.substrate.send_request(1, bytes_of("inc"));
        std::byte out[16];
        env.substrate.recv_response(seq, out);
        ++completed;
      }
    }
  });
  EXPECT_EQ(completed, 15);
  EXPECT_EQ(executions, 15);  // duplicates replayed from cache, not re-run
  EXPECT_GT(result.substrate_stats[0].retransmits, 0u);
}

TEST(UdpSpecific, ForwardedChainSurvivesLoss) {
  ClusterConfig cfg;
  cfg.n_procs = 3;
  cfg.kind = SubstrateKind::UdpGm;
  cfg.cost.k_drop_prob = 0.25;
  cfg.seed = 11;
  Cluster c(cfg);
  int granted = 0;
  c.run([&](NodeEnv& env) {
    env.substrate.set_request_handler(
        [&](const RequestCtx& ctx, std::span<const std::byte> payload) {
          if (env.id == 1) {
            ConstBuf body{payload.data(), payload.size()};
            env.substrate.forward(ctx, 2, std::span<const ConstBuf>(&body, 1));
          } else if (env.id == 2) {
            env.substrate.respond(ctx, bytes_of("grant"));
          }
        });
    if (env.id == 0) {
      for (int r = 0; r < 10; ++r) {
        const auto seq = env.substrate.send_request(1, bytes_of("lock"));
        std::byte out[16];
        const auto len = env.substrate.recv_response(seq, out);
        EXPECT_EQ(string_of({out, len}), "grant");
        ++granted;
      }
    }
  });
  EXPECT_EQ(granted, 10);
}

}  // namespace
}  // namespace tmkgm::cluster
