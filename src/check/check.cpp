#include "check/check.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace tmkgm::check {

namespace {

void join(VectorClock& a, const VectorClock& b) {
  for (std::size_t i = 0; i < b.size(); ++i) a[i] = std::max(a[i], b[i]);
}

std::string site_str(const AccessSite& s) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "p%d %s (vt %u, after %s)", s.proc,
                s.write ? "write" : "read", s.vt, s.sync.c_str());
  return buf;
}

}  // namespace

std::string RaceReport::to_string() const {
  char head[64];
  std::snprintf(head, sizeof head, "race at 0x%08llx (page %u word %u): ",
                static_cast<unsigned long long>(addr), page, word);
  return std::string(head) + site_str(cur) + " vs " + site_str(prev);
}

RaceOracle::RaceOracle(int n_procs, std::size_t page_size,
                       std::size_t max_reports)
    : n_(n_procs),
      page_size_(page_size),
      words_per_page_(page_size / 4),
      max_reports_(max_reports) {
  TMKGM_CHECK(n_ > 0 && page_size_ % 4 == 0);
  clock_.assign(static_cast<std::size_t>(n_),
                VectorClock(static_cast<std::size_t>(n_), 0));
  seg_sync_.assign(static_cast<std::size_t>(n_), {"start"});
  published_vc_.assign(static_cast<std::size_t>(n_),
                       VectorClock(static_cast<std::size_t>(n_), 0));
}

RaceOracle::PageShadow& RaceOracle::shadow_of(std::uint32_t page) {
  auto& s = shadow_[page];
  if (s.w.empty()) {
    s.w.assign(words_per_page_, {});
    s.rseg.assign(words_per_page_ * static_cast<std::size_t>(n_), 0);
    s.rvt.assign(words_per_page_ * static_cast<std::size_t>(n_), 0);
  }
  return s;
}

void RaceOracle::open_segment(int proc, std::string label) {
  auto& c = clock_[static_cast<std::size_t>(proc)];
  ++c[static_cast<std::size_t>(proc)];
  seg_sync_[static_cast<std::size_t>(proc)].push_back(std::move(label));
  ++stats_.segments;
}

AccessSite RaceOracle::site_of(int proc, bool write, std::uint32_t seg,
                               std::uint32_t vt) const {
  return {.proc = proc,
          .write = write,
          .seg = seg,
          .vt = vt,
          .sync = seg_sync_[static_cast<std::size_t>(proc)][seg]};
}

void RaceOracle::report(std::uint32_t page, std::uint32_t word,
                        const AccessSite& prev, const AccessSite& cur,
                        std::optional<RaceReport>& first) {
  if (!reported_words_.insert({page, word}).second) return;
  ++stats_.races;
  RaceReport r{.addr = static_cast<std::uint64_t>(page) * page_size_ +
                       static_cast<std::uint64_t>(word) * 4,
               .page = page,
               .word = word,
               .prev = prev,
               .cur = cur};
  if (!first) first = r;
  if (reports_.size() < max_reports_) reports_.push_back(std::move(r));
}

std::optional<RaceReport> RaceOracle::record(int proc, std::uint64_t ptr,
                                             std::size_t len, std::uint32_t vt,
                                             bool write) {
  std::optional<RaceReport> first;
  const auto& c = clock_[static_cast<std::size_t>(proc)];
  const std::uint32_t my_seg = c[static_cast<std::size_t>(proc)];
  const std::uint64_t w0 = ptr / 4;
  const std::uint64_t w1 = (ptr + len - 1) / 4;
  for (std::uint64_t gw = w0; gw <= w1; ++gw) {
    const auto page = static_cast<std::uint32_t>(gw / words_per_page_);
    const auto word = static_cast<std::uint32_t>(gw % words_per_page_);
    auto& sh = shadow_of(page);
    auto& we = sh.w[word];
    // Write-write / write-read: against the last write epoch.
    if (we.proc >= 0 && we.proc != proc &&
        c[static_cast<std::size_t>(we.proc)] < we.seg) {
      report(page, word, site_of(we.proc, true, we.seg, we.vt),
             site_of(proc, write, my_seg, vt), first);
    }
    if (write) {
      // Read-write: against every proc's last read segment.
      const std::size_t base = static_cast<std::size_t>(word) *
                               static_cast<std::size_t>(n_);
      for (int r = 0; r < n_; ++r) {
        if (r == proc) continue;
        // sr1 stores seg + 1; race iff c[r] < seg, i.e. c[r] + 1 < sr1.
        const std::uint32_t sr1 = sh.rseg[base + static_cast<std::size_t>(r)];
        if (sr1 != 0 && c[static_cast<std::size_t>(r)] + 1 < sr1) {
          report(page, word,
                 site_of(r, false, sr1 - 1,
                         sh.rvt[base + static_cast<std::size_t>(r)]),
                 site_of(proc, write, my_seg, vt), first);
        }
      }
      we = {.proc = static_cast<std::int16_t>(proc), .seg = my_seg, .vt = vt};
    } else {
      const std::size_t slot = static_cast<std::size_t>(word) *
                                   static_cast<std::size_t>(n_) +
                               static_cast<std::size_t>(proc);
      sh.rseg[slot] = my_seg + 1;
      sh.rvt[slot] = vt;
    }
  }
  if (write) {
    ++stats_.writes_recorded;
  } else {
    ++stats_.reads_recorded;
  }
  return first;
}

std::optional<RaceReport> RaceOracle::record_read(int proc, std::uint64_t ptr,
                                                  std::size_t len,
                                                  std::uint32_t vt) {
  return record(proc, ptr, len, vt, false);
}

std::optional<RaceReport> RaceOracle::record_write(int proc, std::uint64_t ptr,
                                                   std::size_t len,
                                                   std::uint32_t vt) {
  return record(proc, ptr, len, vt, true);
}

void RaceOracle::on_lock_release(int proc, int lock, std::uint32_t vt) {
  // Publish before bumping: accesses after the matching grant must not be
  // ordered before accesses the releaser performs after this release.
  lock_clock_[lock] = clock_[static_cast<std::size_t>(proc)];
  ++stats_.hb_edges;
  open_segment(proc, "release(lock " + std::to_string(lock) + ") vt " +
                         std::to_string(vt));
}

void RaceOracle::on_lock_acquired(int proc, int lock, std::uint32_t vt) {
  const auto it = lock_clock_.find(lock);
  if (it != lock_clock_.end()) {
    join(clock_[static_cast<std::size_t>(proc)], it->second);
    ++stats_.hb_edges;
  }
  open_segment(proc, "acquire(lock " + std::to_string(lock) + ") vt " +
                         std::to_string(vt));
}

void RaceOracle::on_barrier_arrive(int proc, int barrier, std::uint32_t vt) {
  auto& b = barriers_[barrier];
  if (b.join.empty()) {
    b.join.assign(static_cast<std::size_t>(n_), 0);
    b.arrived_epoch.assign(static_cast<std::size_t>(n_), 0);
  }
  join(b.join, clock_[static_cast<std::size_t>(proc)]);
  b.arrived_epoch[static_cast<std::size_t>(proc)] = b.collecting_epoch;
  ++stats_.hb_edges;
  if (++b.arrived == n_) {
    b.released[b.collecting_epoch] = {b.join, n_};
    b.join.assign(static_cast<std::size_t>(n_), 0);
    b.arrived = 0;
    ++b.collecting_epoch;
  }
  open_segment(proc, "arrive(barrier " + std::to_string(barrier) + ") vt " +
                         std::to_string(vt));
}

void RaceOracle::on_barrier_leave(int proc, int barrier, std::uint32_t vt) {
  auto& b = barriers_[barrier];
  const auto epoch = b.arrived_epoch.empty()
                         ? 0
                         : b.arrived_epoch[static_cast<std::size_t>(proc)];
  const auto it = b.released.find(epoch);
  TMKGM_CHECK_MSG(it != b.released.end(),
                  "oracle: p" + std::to_string(proc) + " leaves barrier " +
                      std::to_string(barrier) +
                      " before every proc arrived (protocol bug)");
  join(clock_[static_cast<std::size_t>(proc)], it->second.first);
  ++stats_.hb_edges;
  if (--it->second.second == 0) b.released.erase(it);
  open_segment(proc, "barrier " + std::to_string(barrier) + " vt " +
                         std::to_string(vt));
}

void RaceOracle::on_lock_token_granted(int lock, int from, int to) {
  auto& t = tokens_.try_emplace(lock, TokenState{from, -1}).first->second;
  ++stats_.invariant_checks;
  TMKGM_CHECK_MSG(t.in_flight_to == -1,
                  "lock-chain invariant: lock " + std::to_string(lock) +
                      " granted by p" + std::to_string(from) + " to p" +
                      std::to_string(to) + " while already in flight to p" +
                      std::to_string(t.in_flight_to));
  TMKGM_CHECK_MSG(t.holder == from,
                  "lock-chain invariant: lock " + std::to_string(lock) +
                      " granted by p" + std::to_string(from) +
                      " which does not hold the token (holder p" +
                      std::to_string(t.holder) + ")");
  t.holder = -1;
  t.in_flight_to = to;
}

void RaceOracle::on_lock_token_acquired(int lock, int proc) {
  const auto it = tokens_.find(lock);
  ++stats_.invariant_checks;
  TMKGM_CHECK_MSG(it != tokens_.end() && it->second.in_flight_to == proc,
                  "lock-chain invariant: lock " + std::to_string(lock) +
                      " token landed at p" + std::to_string(proc) +
                      " without a matching grant");
  it->second.holder = proc;
  it->second.in_flight_to = -1;
}

void RaceOracle::on_barrier_vc(int proc, const VectorClock& vc) {
  published_vc_[static_cast<std::size_t>(proc)] = vc;
}

void RaceOracle::on_gc_discard(int discarder, int creator, std::uint32_t vt) {
  ++stats_.invariant_checks;
  for (int r = 0; r < n_; ++r) {
    const auto& vc = published_vc_[static_cast<std::size_t>(r)];
    TMKGM_CHECK_MSG(
        vc[static_cast<std::size_t>(creator)] >= vt,
        "GC safety: p" + std::to_string(discarder) + " discards interval (p" +
            std::to_string(creator) + ", vt " + std::to_string(vt) +
            ") not covered by p" + std::to_string(r) +
            "'s last published barrier clock (has " +
            std::to_string(vc[static_cast<std::size_t>(creator)]) + ")");
  }
}

}  // namespace tmkgm::check
