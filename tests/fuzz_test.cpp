// Randomized unit-level fuzzing of the low-level building blocks: the
// twin/diff codec, the wire codec, the engine's interrupt machinery under
// load, and randomized fault plans driven through full cluster runs.
// Seeds are fixed — failures reproduce exactly (fault-plan failures print
// the plan string for `tmkgm_run --faults` replay).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "apps/apps.hpp"
#include "cluster/cluster.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "sim/node.hpp"
#include "tmk/diff.hpp"
#include "util/rng.hpp"
#include "util/wire.hpp"

namespace tmkgm {
namespace {

constexpr std::size_t kPage = 4096;

class DiffFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffFuzz, EncodeApplyRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<std::byte> twin(kPage);
    for (auto& b : twin) b = std::byte(rng.next_below(256));
    std::vector<std::byte> current = twin;

    // Random modification pattern: sparse words, runs, or page edges.
    const auto mode = rng.next_below(3);
    if (mode == 0) {
      const int words = 1 + static_cast<int>(rng.next_below(64));
      for (int w = 0; w < words; ++w) {
        const auto off = rng.next_below(kPage / 4) * 4;
        current[off] = std::byte(rng.next_below(256));
      }
    } else if (mode == 1) {
      const auto start = rng.next_below(kPage / 4) * 4;
      const auto len = std::min(kPage - start, (1 + rng.next_below(256)) * 4);
      for (std::size_t i = start; i < start + len; ++i) {
        current[i] = std::byte(rng.next_below(256));
      }
    } else {
      current[0] = std::byte(~std::to_integer<unsigned>(current[0]));
      current[kPage - 1] = std::byte(~std::to_integer<unsigned>(current[kPage - 1]));
    }

    const auto diff = tmk::encode_diff(current.data(), twin.data(), kPage);
    std::vector<std::byte> rebuilt = twin;
    tmk::apply_diff(rebuilt.data(), diff, kPage);
    ASSERT_EQ(std::memcmp(rebuilt.data(), current.data(), kPage), 0)
        << "seed " << GetParam() << " round " << round << " mode " << mode;
    ASSERT_LE(tmk::diff_modified_bytes(diff), kPage);
  }
}

TEST_P(DiffFuzz, TrailingWordPageSizesRoundTrip) {
  // Odd page sizes with page_size % 8 == 4 drive scan_words' trailing
  // 4-byte-word branch; random word flips must round-trip exactly at
  // every offset, including the final lone word.
  Rng rng(GetParam() ^ 0x7411ed);
  for (const std::size_t size : {std::size_t{68}, std::size_t{132}}) {
    for (int round = 0; round < 50; ++round) {
      std::vector<std::byte> twin(size);
      for (auto& b : twin) b = std::byte(rng.next_below(256));
      std::vector<std::byte> current = twin;
      const int words = 1 + static_cast<int>(rng.next_below(8));
      for (int w = 0; w < words; ++w) {
        const auto off = rng.next_below(size / 4) * 4;
        current[off] = std::byte(rng.next_below(256));
      }
      // Half the rounds force the trailing word specifically.
      if (round % 2 == 0) {
        current[size - 4] =
            std::byte(~std::to_integer<unsigned>(current[size - 4]));
      }
      const auto diff = tmk::encode_diff(current.data(), twin.data(), size);
      std::vector<std::byte> rebuilt = twin;
      tmk::apply_diff(rebuilt.data(), diff, size);
      ASSERT_EQ(std::memcmp(rebuilt.data(), current.data(), size), 0)
          << "size " << size << " seed " << GetParam() << " round " << round;
      ASSERT_LE(tmk::diff_modified_bytes(diff), size);
    }
  }
}

TEST_P(DiffFuzz, DisjointConcurrentWritersMerge) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int round = 0; round < 25; ++round) {
    std::vector<std::byte> twin(kPage, std::byte{0});
    std::vector<std::byte> a = twin, b = twin;
    // Writer A touches even words, writer B odd words (disjoint by
    // construction, as data-race freedom guarantees).
    for (int w = 0; w < 40; ++w) {
      const auto wa = rng.next_below(kPage / 8) * 8;
      a[wa] = std::byte(1 + rng.next_below(255));
      const auto wb = rng.next_below(kPage / 8) * 8 + 4;
      b[wb] = std::byte(1 + rng.next_below(255));
    }
    const auto da = tmk::encode_diff(a.data(), twin.data(), kPage);
    const auto db = tmk::encode_diff(b.data(), twin.data(), kPage);
    std::vector<std::byte> m1 = twin, m2 = twin;
    tmk::apply_diff(m1.data(), da, kPage);
    tmk::apply_diff(m1.data(), db, kPage);
    tmk::apply_diff(m2.data(), db, kPage);
    tmk::apply_diff(m2.data(), da, kPage);
    ASSERT_EQ(std::memcmp(m1.data(), m2.data(), kPage), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffFuzz,
                         ::testing::Values(1u, 99u, 20260707u));

TEST(WireFuzz, RandomRecordsRoundTrip) {
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    WireWriter w;
    std::vector<std::uint64_t> vals;
    std::vector<int> kinds;
    const int n = 1 + static_cast<int>(rng.next_below(20));
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.next_below(3));
      kinds.push_back(kind);
      const std::uint64_t v = rng.next_u64();
      vals.push_back(v);
      if (kind == 0) w.put<std::uint8_t>(static_cast<std::uint8_t>(v));
      if (kind == 1) w.put<std::uint32_t>(static_cast<std::uint32_t>(v));
      if (kind == 2) w.put<std::uint64_t>(v);
    }
    WireReader r(w.bytes());
    for (int i = 0; i < n; ++i) {
      if (kinds[static_cast<std::size_t>(i)] == 0) {
        ASSERT_EQ(r.get<std::uint8_t>(),
                  static_cast<std::uint8_t>(vals[static_cast<std::size_t>(i)]));
      } else if (kinds[static_cast<std::size_t>(i)] == 1) {
        ASSERT_EQ(r.get<std::uint32_t>(),
                  static_cast<std::uint32_t>(vals[static_cast<std::size_t>(i)]));
      } else {
        ASSERT_EQ(r.get<std::uint64_t>(), vals[static_cast<std::size_t>(i)]);
      }
    }
    ASSERT_TRUE(r.done());
  }
}

TEST(EngineStress, InterruptStormStaysDeterministic) {
  auto run_once = [] {
    sim::Engine e(4242);
    std::vector<SimTime> marks;
    constexpr int kNodes = 6;
    for (int i = 0; i < kNodes; ++i) {
      e.add_node("n" + std::to_string(i), [&, i](sim::Node& n) {
        Rng rng(1000 + static_cast<std::uint64_t>(i));
        int handled = 0;
        const int irq = n.add_interrupt([&] {
          ++handled;
          n.compute(rng.next_below(500));
        });
        // A barrage of self-targeted interrupts at random times.
        for (int k = 0; k < 40; ++k) {
          e.after(static_cast<SimTime>(rng.next_below(200'000)),
                  [&n, irq] { n.raise_interrupt(irq); });
        }
        for (int k = 0; k < 30; ++k) {
          if (rng.next_bool(0.3)) n.mask_interrupts();
          n.compute(1 + rng.next_below(10'000));
          if (n.interrupts_masked()) n.unmask_interrupts();
        }
        // Drain whatever is still queued.
        while (handled < 40) n.compute(1000);
        marks.push_back(n.now());
      });
    }
    e.run();
    return marks;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  for (auto t : a) EXPECT_GT(t, 0);
}

TEST(EngineStress, ConditionTimeoutsUnderInterrupts) {
  sim::Engine e;
  int timeouts = 0, signals = 0;
  e.add_node("n0", [&](sim::Node& n) {
    sim::Condition c(n);
    const int irq = n.add_interrupt([&] { n.compute(700); });
    for (int k = 0; k < 50; ++k) {
      e.after(200, [&n, irq] { n.raise_interrupt(irq); });
      if (k % 2 == 0) {
        e.after(300, [&c] { c.signal(); });
      }
      if (c.wait_until(n.now() + 1000)) {
        ++signals;
      } else {
        ++timeouts;
      }
    }
  });
  e.run();
  EXPECT_EQ(signals, 25);
  EXPECT_EQ(timeouts, 25);
}

/// Randomized fault plans through full cluster runs. random_plan() is
/// bounded by construction (finite message bursts, windowed timed faults),
/// so every run must complete with the fault-free result and balanced
/// conservation counters. On failure, SCOPED_TRACE prints the exact
/// command line to replay the counterexample.
class FaultPlanFuzz
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, cluster::SubstrateKind>> {};

TEST_P(FaultPlanFuzz, RandomPlansCompleteAndConserve) {
  const auto& [seed, kind] = GetParam();
  const fault::FaultPlan plan = fault::random_plan(seed, 4);
  const char* substrate =
      kind == cluster::SubstrateKind::FastGm ? "fastgm" : "udpgm";
  SCOPED_TRACE("replay: tmkgm_run --app jacobi --nodes 4 --substrate " +
               std::string(substrate) + " --faults \"" + plan.to_string() +
               "\"");

  auto run_once = [&](bool faulted, cluster::RunResult* out) {
    cluster::ClusterConfig cfg;
    cfg.n_procs = 4;
    cfg.kind = kind;
    cfg.tmk.arena_bytes = 8u << 20;
    cfg.event_limit = 500'000'000;
    cfg.cost.gm_resend_timeout = milliseconds(20.0);
    if (faulted) cfg.faults = plan;
    cluster::Cluster c(cfg);
    double checksum = 0.0;
    const auto result =
        c.run_tmk([&](tmk::Tmk& t, cluster::NodeEnv& env) {
          const auto r = apps::jacobi(t, {.rows = 32, .cols = 32, .iters = 3});
          if (env.id == 0) checksum = r.checksum;
        });
    if (out != nullptr) *out = result;
    return checksum;
  };

  const double baseline = run_once(false, nullptr);
  cluster::RunResult result;
  const double faulted = run_once(true, &result);
  EXPECT_EQ(faulted, baseline);
  EXPECT_EQ(result.fault.drops_injected, result.fault.drops_observed);
  EXPECT_EQ(result.fault.dups_injected, result.fault.dups_observed);
  EXPECT_EQ(result.fault.delays_injected, result.fault.delays_observed);
  EXPECT_EQ(result.fault.reorders_injected, result.fault.reorders_observed);
  EXPECT_EQ(result.fault.recoveries, result.fault.send_failures);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FaultPlanFuzz,
    ::testing::Combine(::testing::Values(1u, 7u, 42u, 99u, 20260805u),
                       ::testing::Values(cluster::SubstrateKind::FastGm,
                                         cluster::SubstrateKind::UdpGm)),
    [](const auto& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == cluster::SubstrateKind::FastGm
                  ? "_FastGm"
                  : "_UdpGm");
    });

}  // namespace
}  // namespace tmkgm
