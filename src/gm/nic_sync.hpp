// NIC-offloaded synchronization — the paper's §5 future work, implemented.
//
// "One technique would be to push certain primitives such as locks and
//  barriers down to the NIC."
//
// This models a further GM firmware extension: barrier counting and lock
// queueing live on the LANai at a root NIC. Hosts post a tiny command
// descriptor and sleep; arrival/grant packets are consumed entirely in
// firmware (NIC occupancy, no host interrupt, no SIGIO, no protocol
// processing), and only the final release/grant wakes the host.
//
// Note this is a *synchronization-only* primitive: TreadMarks barriers and
// locks also carry consistency information (interval records), which would
// still travel on the host path. The companion bench reports the pure
// synchronization cost both ways — the gap is the paper's projected win.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "gm/gm.hpp"

namespace tmkgm::gm {

class NicSyncSystem {
 public:
  /// `root` hosts the firmware counters/queues.
  NicSyncSystem(GmSystem& gm, int root = 0, int n_locks = 64);

  /// Firmware barrier across all nodes. Called from the node's context.
  void barrier(int node_id);

  /// Firmware FIFO lock.
  void lock_acquire(int node_id, int lock);
  void lock_release(int node_id, int lock);

  struct Stats {
    std::uint64_t barriers = 0;
    std::uint64_t lock_grants = 0;
    std::uint64_t packets = 0;
  };
  Stats stats() const {
    return {stats_.barriers, stats_.lock_grants,
            packets_.load(std::memory_order_relaxed)};
  }

 private:
  /// Ships a firmware-level packet (host not involved at the receiver).
  void firmware_send(int src, int dst, std::function<void()> on_arrival);
  void wake(int node_id, sim::Condition& cond);

  GmSystem& gm_;
  const int root_;

  // Barrier state at the root NIC.
  int arrived_ = 0;
  std::vector<std::unique_ptr<sim::Condition>> barrier_waiters_;

  // Lock state at the root NIC: holder (-1 free) + FIFO of waiting nodes.
  struct FwLock {
    int holder = -1;
    std::deque<int> queue;
  };
  std::vector<FwLock> locks_;
  std::vector<std::unique_ptr<sim::Condition>> lock_waiters_;

  // barriers / lock_grants mutate only in root-affine handlers (one shard);
  // the packet count bumps from any sender's shard, so it is a relaxed
  // atomic (an order-independent total).
  Stats stats_;
  std::atomic<std::uint64_t> packets_{0};
};

}  // namespace tmkgm::gm
