#include "net/cost_model.hpp"

namespace tmkgm::net {

CostModel testbed_cost_model() { return CostModel{}; }

FabricParams gm_fabric(const CostModel& cost) {
  FabricParams f;
  f.per_msg = cost.gm_lanai_per_msg;
  f.dma_setup = cost.gm_dma_setup;
  f.wire_bytes_per_us = cost.gm_wire_bytes_per_us;
  f.pci_bytes_per_us = cost.gm_pci_bytes_per_us;
  f.switch_hop = cost.gm_switch_hop;
  f.hops = cost.hops;
  return f;
}

FabricParams ib_fabric(const CostModel& cost) {
  FabricParams f;
  f.per_msg = cost.ib_hca_per_msg;
  f.dma_setup = cost.ib_dma_setup;
  f.wire_bytes_per_us = cost.ib_wire_bytes_per_us;
  f.pci_bytes_per_us = cost.gm_pci_bytes_per_us;  // same PCI bus
  f.switch_hop = cost.ib_switch_hop;
  f.hops = cost.hops;
  return f;
}

}  // namespace tmkgm::net
