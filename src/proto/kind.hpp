// Coherence-protocol selector. Kept in its own tiny header so tmk.hpp can
// embed a proto::Kind in TmkConfig without pulling in the protocol classes
// (which themselves need the full Tmk definition).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace tmkgm::proto {

enum class Kind : std::uint8_t {
  /// TreadMarks' homeless lazy release consistency: twins are retained
  /// across intervals, diffs are encoded lazily and pulled from each
  /// writer on demand.
  Lrc,
  /// Home-based LRC: writers eagerly flush diffs to the page's home at
  /// each release; the home holds the authoritative copy and faulting
  /// nodes fetch whole pages from it.
  Hlrc,
  /// Per-page adaptive policy layered over homeless LRC: pages whose diff
  /// traffic approaches whole pages are promoted to home-based handling
  /// (full-page flush offers, home-authoritative fetches, write-notice
  /// prefetch); everything else stays exact LRC. On substrates with
  /// one-sided RDMA (FAST/IB) the flush is an RDMA write with immediate
  /// into the home's arena under an exclusive per-page lease.
  Adaptive,
};

constexpr const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Lrc: return "lrc";
    case Kind::Hlrc: return "hlrc";
    case Kind::Adaptive: return "adaptive";
  }
  return "?";
}

inline std::optional<Kind> parse_kind(std::string_view s) {
  if (s == "lrc") return Kind::Lrc;
  if (s == "hlrc") return Kind::Hlrc;
  if (s == "adaptive") return Kind::Adaptive;
  return std::nullopt;
}

}  // namespace tmkgm::proto
