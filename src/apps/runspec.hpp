// RunSpec: a named point in the app × substrate × protocol space, with a
// stable string form ("app=jacobi;substrate=fastgm;...").
//
// One dispatch to rule them all: tmkgm_run, the re-cost capture header
// (which embeds the spec so a capture file is self-describing), and the
// re-cost sweep tool's validation re-runs all build their cluster from the
// same RunSpec, so "the run that produced this capture" is reproducible
// from the capture alone.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/cluster.hpp"
#include "kv/workload.hpp"
#include "util/time.hpp"

namespace tmkgm::apps {

struct RunSpec {
  std::string app = "jacobi";
  std::string substrate = "fastgm";
  std::string protocol = "lrc";
  int nodes = 8;
  std::size_t size = 0;  // 0 = app default (grid edge / cities / keys ...)
  int iters = 0;         // 0 = app default
  std::uint64_t seed = 1;
  int barrier_arity = 0;  // 0 = flat proc-0 barrier
  bool lock_directory = false;
  std::size_t arena_mb = 256;
  // Served-workload knobs, meaningful only for app=kv (size = key-space,
  // iters = requests per node). to_string() emits them only for kv runs so
  // every other app's spec string — including the ones embedded in re-cost
  // capture files — stays byte-identical.
  int kv_shards = 16;
  int kv_slots = 512;             // slots per shard
  std::uint64_t kv_gap_ns = 2000000;  // mean inter-arrival per node
  int kv_get_permille = 900;
  int kv_zipf_permille = 990;
  std::uint64_t kv_preload = 1024;

  /// Stable "key=value;..." form; parse() round-trips it.
  std::string to_string() const;
  static bool parse(const std::string& text, RunSpec& out, std::string& error);

  friend bool operator==(const RunSpec&, const RunSpec&) = default;
};

/// Fills a ClusterConfig from the spec (n_procs, substrate kind, protocol,
/// tmk knobs, seed). Returns false with `error` set on an unknown
/// substrate/protocol name. Fields the spec does not cover (engine mode,
/// tracer, capture, cost model) keep whatever the caller put there.
bool spec_cluster_config(const RunSpec& spec, cluster::ClusterConfig& cfg,
                         std::string& error);

struct SpecRunResult {
  cluster::RunResult run;
  double checksum = 0.0;
  /// Max over nodes of the app's own timed phase.
  SimTime elapsed = 0;
  /// Served-workload accounting, filled only when the spec's app is kv
  /// (has_kv). The same numbers are rolled into run.counters as kv.* rows.
  kv::KvSummary kv;
  bool has_kv = false;
};

/// Runs the spec's app on an already-configured cluster config (callers
/// typically customize cfg.cost / cfg.capture / cfg.tracer between
/// spec_cluster_config and here). Throws CheckError on an unknown app.
SpecRunResult run_spec(const RunSpec& spec, const cluster::ClusterConfig& cfg);

/// Serial-reference checksum for --verify; returns false for apps without
/// one (racy).
bool spec_serial_reference(const RunSpec& spec, double& expected);

}  // namespace tmkgm::apps
