// A2 — §2.2.2 ablation: full pre-posting (sizes 4..15) vs the rendezvous
// variant that drops sizes >= 13 and pins memory on demand for messages
// over 8K. The paper's math: full pre-posting costs ~64K*(n-1)+64K of
// pinned memory per node (~16 MB at 256 nodes); rendezvous brings it to
// ~6 MB but "increases the communication overhead". We show both the
// pinned-memory model for growing clusters and the measured performance
// cost on the large-message paths (Diff-large, 3D FFT).
#include <cstdio>

#include "bench_common.hpp"
#include "micro/micro.hpp"

int main() {
  using namespace tmkgm;
  using cluster::SubstrateKind;

  // Pinned receive-pool bytes per node, from the paper's formulas.
  Table mem({"nodes", "full prepost (MB)", "rendezvous (MB)"});
  for (int n : {16, 64, 128, 256}) {
    auto pool_bytes = [&](int max_size) {
      std::size_t per_peer = 0;
      for (int s = 5; s <= max_size; ++s) per_peer += 1u << s;
      per_peer += 2 * 16;  // o=2 size-4 buffers
      std::size_t sync = 0;
      for (int s = 4; s <= max_size; ++s) sync += 1u << s;
      return static_cast<double>(per_peer) * (n - 1) +
             static_cast<double>(sync);
    };
    mem.add_row({std::to_string(n),
                 Table::num(pool_bytes(15) / 1048576.0, 2),
                 Table::num(pool_bytes(12) / 1048576.0, 2)});
  }
  std::printf("=== A2 (paper sec 2.2.2): pinned memory model ===\n%s\n",
              mem.to_string().c_str());

  apps::FftParams fft{32, 2};
  Table t({"strategy", "Diff large (us/page)", "3Dfft-8 (s)",
           "pinned @8 nodes (KB)"});
  for (bool rendezvous : {false, true}) {
    auto cfg = bench::make_config(8, SubstrateKind::FastGm);
    cfg.fastgm.rendezvous_large = rendezvous;
    const double diff = micro::diff_us(cfg, /*large=*/true);
    cluster::Cluster probe(cfg);
    const auto pinned =
        probe.run([](cluster::NodeEnv&) {}).pinned_bytes_node0;
    const double fftsec = bench::run_app_seconds(
        cfg, [&](tmk::Tmk& t_) { return apps::fft3d(t_, fft); });
    t.add_row({rendezvous ? "rendezvous >8K" : "full prepost",
               Table::num(diff, 1), Table::num(fftsec, 3),
               Table::num(static_cast<double>(pinned) / 1024.0, 0)});
  }
  std::printf("=== A2: measured cost of the rendezvous variant ===\n%s\n",
              t.to_string().c_str());
  return 0;
}
