// Fixed-width text tables for the benchmark harnesses, so every bench prints
// paper-style rows that are easy to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace tmkgm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders with column alignment; first column left-aligned, the rest
  /// right-aligned.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tmkgm
