// Fault-injection subsystem unit tests: plan grammar round-trips, rule
// matching semantics (after/count/prob, drop-wins), GM-level fault
// materialization (forced send timeout + port disable, buffer seizure),
// the compute-warp hook, and fabric delay injection.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "gm/gm.hpp"
#include "net/network.hpp"
#include "util/check.hpp"

namespace tmkgm::fault {
namespace {

TEST(FaultPlanGrammar, ToStringParseRoundTrip) {
  FaultPlan plan;
  plan.seed = 42;
  FaultRule drop;
  drop.kind = FaultKind::Drop;
  drop.src = 1;
  drop.dst = 0;
  drop.after = 4;
  drop.count = 2;
  plan.rules.push_back(drop);
  FaultRule dup;
  dup.kind = FaultKind::Duplicate;
  dup.copies = 3;
  dup.count = 5;
  dup.prob = 0.5;
  plan.rules.push_back(dup);
  FaultRule delay;
  delay.kind = FaultKind::Delay;
  delay.delay = microseconds(350);
  delay.count = 0;  // unbounded
  plan.rules.push_back(delay);
  FaultRule reorder;
  reorder.kind = FaultKind::Reorder;
  reorder.src = 3;
  reorder.delay = microseconds(900);
  plan.rules.push_back(reorder);
  FaultRule disable;
  disable.kind = FaultKind::PortDisable;
  disable.node = 2;
  disable.port = 3;
  disable.at = milliseconds(2.0);
  disable.dur = milliseconds(3.0);
  plan.rules.push_back(disable);
  FaultRule exhaust;
  exhaust.kind = FaultKind::BufferExhaust;
  exhaust.node = 1;
  exhaust.at = milliseconds(1.0);
  exhaust.dur = milliseconds(4.0);
  plan.rules.push_back(exhaust);
  FaultRule slow;
  slow.kind = FaultKind::NodeSlow;
  slow.node = 0;
  slow.factor = 2.5;
  slow.at = 0;
  slow.dur = milliseconds(5.0);
  plan.rules.push_back(slow);
  FaultRule pause;
  pause.kind = FaultKind::NodePause;
  pause.node = 3;
  pause.at = microseconds(500);
  pause.dur = milliseconds(1.0);
  plan.rules.push_back(pause);

  const std::string text = plan.to_string();
  const FaultPlan reparsed = FaultPlan::parse_or_die(text);
  EXPECT_EQ(reparsed.seed, plan.seed);
  ASSERT_EQ(reparsed.rules.size(), plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    EXPECT_EQ(reparsed.rules[i], plan.rules[i]) << "rule " << i << " in " << text;
  }
  // And the canonical form is a fixed point.
  EXPECT_EQ(reparsed.to_string(), text);
}

TEST(FaultPlanGrammar, ParsesHumanFriendlyInput) {
  const auto plan = FaultPlan::parse_or_die(
      "seed=7; drop(src=1, dst=*, after=4, count=2); "
      "disable(node=2, at=2ms, dur=3ms); slow(node=0, at=1s, dur=500us, "
      "factor=8)");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::Drop);
  EXPECT_EQ(plan.rules[0].src, 1);
  EXPECT_EQ(plan.rules[0].dst, -1);
  EXPECT_EQ(plan.rules[0].after, 4u);
  EXPECT_EQ(plan.rules[0].count, 2u);
  EXPECT_EQ(plan.rules[1].kind, FaultKind::PortDisable);
  EXPECT_EQ(plan.rules[1].at, milliseconds(2.0));
  EXPECT_EQ(plan.rules[1].dur, milliseconds(3.0));
  EXPECT_EQ(plan.rules[2].kind, FaultKind::NodeSlow);
  EXPECT_EQ(plan.rules[2].at, seconds(1.0));
  EXPECT_EQ(plan.rules[2].dur, microseconds(500));
  EXPECT_DOUBLE_EQ(plan.rules[2].factor, 8.0);
}

TEST(FaultPlanGrammar, RejectsMalformedInput) {
  FaultPlan out;
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("drop(src=", out, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultPlan::parse("explode(node=1)", out, error));
  EXPECT_FALSE(FaultPlan::parse("drop(prob=1.5)", out, error));
  EXPECT_FALSE(FaultPlan::parse("slow(node=1,factor=0)", out, error));
  EXPECT_FALSE(FaultPlan::parse("exhaust(node=1,dur=0)", out, error));
  EXPECT_FALSE(FaultPlan::parse("disable(node=-2)", out, error));
  // `out` untouched on failure.
  EXPECT_TRUE(out.empty());
}

TEST(FaultPlanGrammar, RandomPlanIsDeterministicAndRoundTrips) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const FaultPlan a = random_plan(seed, 4);
    const FaultPlan b = random_plan(seed, 4);
    EXPECT_EQ(a.to_string(), b.to_string()) << "seed " << seed;
    EXPECT_FALSE(a.empty());
    const FaultPlan re = FaultPlan::parse_or_die(a.to_string());
    EXPECT_EQ(re.to_string(), a.to_string()) << "seed " << seed;
    // Bounded by construction: no unbounded message rules.
    for (const auto& r : a.rules) {
      switch (r.kind) {
        case FaultKind::Drop:
        case FaultKind::Duplicate:
        case FaultKind::Delay:
        case FaultKind::Reorder:
          EXPECT_GT(r.count, 0u) << "seed " << seed;
          break;
        default:
          break;
      }
    }
  }
}

TEST(FaultInjectorRules, AfterCountAndSrcDstMatching) {
  sim::Engine engine;
  FaultPlan plan = FaultPlan::parse_or_die(
      "drop(src=1,dst=0,after=2,count=2)");
  FaultInjector inj(plan, engine);
  // Wrong edge never matches.
  EXPECT_FALSE(inj.message_fault(0, 1).drop);
  // Eligible #0 and #1 are skipped (after=2); #2 and #3 fire; #4 exhausted.
  EXPECT_FALSE(inj.message_fault(1, 0).drop);
  EXPECT_FALSE(inj.message_fault(1, 0).drop);
  EXPECT_TRUE(inj.message_fault(1, 0).drop);
  EXPECT_TRUE(inj.message_fault(1, 0).drop);
  EXPECT_FALSE(inj.message_fault(1, 0).drop);
  EXPECT_EQ(inj.stats().drops_injected, 2u);
}

TEST(FaultInjectorRules, DropWinsOverDupAndReorder) {
  sim::Engine engine;
  FaultPlan plan = FaultPlan::parse_or_die(
      "drop(count=1);dup(count=5,copies=2);reorder(count=5,delay=100us)");
  FaultInjector inj(plan, engine);
  const auto first = inj.message_fault(0, 1);
  EXPECT_TRUE(first.drop);
  EXPECT_EQ(first.duplicates, 0);
  EXPECT_EQ(first.reorder_delay, 0);
  const auto second = inj.message_fault(0, 1);
  EXPECT_FALSE(second.drop);
  EXPECT_EQ(second.duplicates, 2);
  EXPECT_EQ(second.reorder_delay, microseconds(100));
  EXPECT_EQ(inj.stats().drops_injected, 1u);
  EXPECT_EQ(inj.stats().dups_injected, 2u);
  EXPECT_EQ(inj.stats().reorders_injected, 1u);
}

TEST(FaultInjectorRules, ComputeWarpSlowsAndPauses) {
  sim::Engine engine;
  FaultPlan plan = FaultPlan::parse_or_die(
      "slow(node=0,at=0,dur=1ms,factor=4);pause(node=1,at=0,dur=1ms)");
  FaultInjector inj(plan, engine);
  EXPECT_TRUE(inj.warps_compute());
  // Node 0 inside the window: 4x. Outside: untouched.
  EXPECT_EQ(inj.warp_compute(0, 0, microseconds(10)), microseconds(40));
  EXPECT_EQ(inj.warp_compute(0, milliseconds(2.0), microseconds(10)),
            microseconds(10));
  // Node 1 pauses until the window ends: quantum stretches to cover it.
  EXPECT_EQ(inj.warp_compute(1, microseconds(200), microseconds(10)),
            (milliseconds(1.0) - microseconds(200)) + microseconds(10));
  // Unlisted node untouched.
  EXPECT_EQ(inj.warp_compute(2, 0, microseconds(10)), microseconds(10));
  EXPECT_EQ(inj.stats().compute_warped, 2u);
}

/// GM harness mirroring gm_test.cpp's fixture, with an injector installed.
class GmFaultFixture : public ::testing::Test {
 protected:
  void build(int n_nodes, const std::string& plan_text,
             std::vector<std::function<void(sim::Node&)>> progs) {
    engine_ = std::make_unique<sim::Engine>();
    for (int i = 0; i < n_nodes; ++i) {
      engine_->add_node("n" + std::to_string(i),
                        progs[static_cast<std::size_t>(i)]);
    }
    network_ = std::make_unique<net::Network>(*engine_, n_nodes, cost_);
    gm_ = std::make_unique<gm::GmSystem>(*network_);
    injector_ = std::make_unique<FaultInjector>(
        FaultPlan::parse_or_die(plan_text), *engine_);
    network_->set_fault_injector(injector_.get());
  }

  net::CostModel cost_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<gm::GmSystem> gm_;
  std::unique_ptr<FaultInjector> injector_;
};

TEST_F(GmFaultFixture, DroppedGmSendTimesOutAndDisablesPort) {
  cost_.gm_resend_timeout = milliseconds(5.0);
  std::vector<gm::Status> statuses;
  build(2, "drop(src=0,dst=1,count=1)",
        {[&](sim::Node& n) {
           auto& port = gm_->nic(0).open_port(2);
           std::vector<std::byte> buf(64);
           gm_->nic(0).register_memory(buf.data(), buf.size());
           const SimTime t0 = n.now();
           bool done = false;
           port.send_with_callback(
               buf.data(), 4, 8, 1, 2,
               [&](gm::Status st, void*) {
                 statuses.push_back(st);
                 done = true;
               },
               nullptr);
           while (!done) n.compute(microseconds(50));
           // The failure consumed the full resend timeout and disabled us.
           EXPECT_GE(n.now() - t0, milliseconds(5.0));
           EXPECT_FALSE(port.enabled());
           // A subsequent send fails fast with SendPortDisabled.
           done = false;
           port.send_with_callback(
               buf.data(), 4, 8, 1, 2,
               [&](gm::Status st, void*) {
                 statuses.push_back(st);
                 done = true;
               },
               nullptr);
           while (!done) n.compute(microseconds(50));
           // reenable() restores service.
           port.reenable();
           EXPECT_TRUE(port.enabled());
           done = false;
           port.send_with_callback(
               buf.data(), 4, 8, 1, 2,
               [&](gm::Status st, void*) {
                 statuses.push_back(st);
                 done = true;
               },
               nullptr);
           while (!done) n.compute(microseconds(50));
         },
         [&](sim::Node& n) {
           auto& port = gm_->nic(1).open_port(2);
           std::vector<std::byte> buf(64);
           gm_->nic(1).register_memory(buf.data(), buf.size());
           port.provide_receive_buffer(buf.data(), 4);
           port.blocking_receive();
           (void)n;
         }});
  engine_->run();
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0], gm::Status::SendTimedOut);
  EXPECT_EQ(statuses[1], gm::Status::SendPortDisabled);
  EXPECT_EQ(statuses[2], gm::Status::Ok);
  EXPECT_EQ(injector_->stats().drops_injected, 1u);
  EXPECT_EQ(injector_->stats().drops_observed, 1u);
}

TEST_F(GmFaultFixture, SeizedBuffersParkArrivalsUntilRestored) {
  bool received = false;
  build(2, "delay(count=0,prob=0)",  // injector present, no message faults
        {[&](sim::Node& n) {
           auto& port = gm_->nic(0).open_port(2);
           std::vector<std::byte> buf(64);
           gm_->nic(0).register_memory(buf.data(), buf.size());
           bool done = false;
           port.send_with_callback(
               buf.data(), 4, 8, 1, 2,
               [&](gm::Status st, void*) {
                 EXPECT_EQ(st, gm::Status::Ok);
                 done = true;
               },
               nullptr);
           while (!done) n.compute(microseconds(50));
         },
         [&](sim::Node& n) {
           auto& port = gm_->nic(1).open_port(2);
           std::vector<std::byte> buf(64);
           gm_->nic(1).register_memory(buf.data(), buf.size());
           port.provide_receive_buffer(buf.data(), 4);
           // Seize before the message can arrive; it must park.
           port.fault_seize_buffers();
           EXPECT_EQ(port.posted_buffers(4), 0);
           n.compute(milliseconds(2.0));
           EXPECT_EQ(port.stats().parked, 1u);
           EXPECT_FALSE(received);
           // Restoring re-posts the stash, which serves the parked arrival.
           port.fault_restore_buffers();
           const auto msg = port.blocking_receive();
           received = true;
           EXPECT_EQ(msg.length, 8u);
         }});
  engine_->run();
  EXPECT_TRUE(received);
}

TEST_F(GmFaultFixture, InjectedTransferDelayAddsOccupancy) {
  SimTime plain = 0, delayed = 0;
  for (int pass = 0; pass < 2; ++pass) {
    SimTime* out = pass == 0 ? &plain : &delayed;
    const std::string plan =
        pass == 0 ? "delay(count=0,prob=0)" : "delay(count=0,delay=250us)";
    build(2, plan,
          {[&, out](sim::Node& n) {
             auto& port = gm_->nic(0).open_port(2);
             std::vector<std::byte> buf(64);
             gm_->nic(0).register_memory(buf.data(), buf.size());
             const SimTime t0 = n.now();
             bool done = false;
             port.send_with_callback(
                 buf.data(), 4, 8, 1, 2,
                 [&](gm::Status, void*) { done = true; }, nullptr);
             while (!done) n.compute(microseconds(10));
             *out = n.now() - t0;
           },
           [&](sim::Node&) {
             auto& port = gm_->nic(1).open_port(2);
             std::vector<std::byte> buf(64);
             gm_->nic(1).register_memory(buf.data(), buf.size());
             port.provide_receive_buffer(buf.data(), 4);
             port.blocking_receive();
           }});
    engine_->run();
  }
  EXPECT_GE(delayed - plain, microseconds(250) - microseconds(20));
  EXPECT_EQ(injector_->stats().delays_injected,
            injector_->stats().delays_observed);
  EXPECT_GT(injector_->stats().delays_observed, 0u);
}

}  // namespace
}  // namespace tmkgm::fault
