// Counter registry: named monotonic counters rolled up from every layer's
// stats structs (substrate, fabric, UDP stack, TreadMarks) into one stable
// table attached to cluster::RunResult. Names are dotted paths
// ("sub.retransmits", "udp.drops_overflow"); iteration order is the sorted
// name order, so the formatted table is byte-stable for a given run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tmkgm::obs {

class CounterRegistry {
 public:
  /// Adds `v` to counter `name` (creating it at zero).
  void add(std::string_view name, std::uint64_t v);

  /// Current value, or 0 for a counter never touched.
  std::uint64_t value(std::string_view name) const;

  bool contains(std::string_view name) const;
  bool empty() const { return rows_.empty(); }
  std::size_t size() const { return rows_.size(); }

  const std::map<std::string, std::uint64_t, std::less<>>& rows() const {
    return rows_;
  }

  /// Name-sorted fixed-layout table, one "<name> <value>" line per
  /// counter, each prefixed with `indent`.
  std::string format_table(std::string_view indent = "") const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> rows_;
};

}  // namespace tmkgm::obs
