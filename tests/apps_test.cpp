// Application correctness: each paper workload, on several node counts and
// on BOTH substrates, must compute bitwise/identical results to its serial
// reference. These are the strongest end-to-end checks of the DSM: Jacobi
// exercises barriers + boundary diffs, SOR lock-chained neighbour handoff,
// TSP a lock-protected shared queue, FFT the all-to-all transpose.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "cluster/cluster.hpp"

namespace tmkgm::cluster {
namespace {

struct Case {
  SubstrateKind kind;
  int n_procs;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* kind = info.param.kind == SubstrateKind::FastGm ? "FastGm"
                     : info.param.kind == SubstrateKind::UdpGm ? "UdpGm"
                                                               : "FastIb";
  return std::string(kind) + "_n" + std::to_string(info.param.n_procs);
}

class AppsTest : public ::testing::TestWithParam<Case> {
 protected:
  ClusterConfig config(std::size_t arena = 16u << 20) {
    ClusterConfig cfg;
    cfg.n_procs = GetParam().n_procs;
    cfg.kind = GetParam().kind;
    cfg.tmk.arena_bytes = arena;
    cfg.event_limit = 500'000'000;
    return cfg;
  }
};

TEST_P(AppsTest, JacobiMatchesSerial) {
  apps::JacobiParams p;
  p.rows = 64;
  p.cols = 96;
  p.iters = 6;
  Cluster c(config());
  double got = 0;
  c.run_tmk([&](tmk::Tmk& tmk, NodeEnv& env) {
    const auto r = apps::jacobi(tmk, p);
    if (env.id == 0) got = r.checksum;
  });
  EXPECT_DOUBLE_EQ(got, apps::jacobi_serial(p));
}

TEST_P(AppsTest, SorMatchesSerial) {
  apps::SorParams p;
  p.rows = 48;
  p.cols = 64;
  p.iters = 5;
  Cluster c(config());
  double got = 0;
  c.run_tmk([&](tmk::Tmk& tmk, NodeEnv& env) {
    const auto r = apps::sor(tmk, p);
    if (env.id == 0) got = r.checksum;
  });
  EXPECT_DOUBLE_EQ(got, apps::sor_serial(p));
}

TEST_P(AppsTest, TspFindsOptimum) {
  apps::TspParams p;
  p.cities = 9;
  p.split_depth = 3;
  Cluster c(config());
  std::int64_t got = -1;
  c.run_tmk([&](tmk::Tmk& tmk, NodeEnv& env) {
    const auto r = apps::tsp(tmk, p);
    if (env.id == 0) got = static_cast<std::int64_t>(r.checksum);
  });
  EXPECT_EQ(got, apps::tsp_serial(p));
}

TEST_P(AppsTest, Fft3dMatchesSerial) {
  apps::FftParams p;
  p.n = 8;
  p.iters = 1;
  Cluster c(config());
  double got = 0;
  c.run_tmk([&](tmk::Tmk& tmk, NodeEnv& env) {
    const auto r = apps::fft3d(tmk, p);
    if (env.id == 0) got = r.checksum;
  });
  EXPECT_NEAR(got, apps::fft3d_serial(p), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AppsTest,
    ::testing::Values(Case{SubstrateKind::FastGm, 1},
                      Case{SubstrateKind::FastGm, 2},
                      Case{SubstrateKind::FastGm, 4},
                      Case{SubstrateKind::FastGm, 8},
                      Case{SubstrateKind::UdpGm, 2},
                      Case{SubstrateKind::UdpGm, 4},
                      Case{SubstrateKind::FastIb, 4},
                      Case{SubstrateKind::FastIb, 8}),
    case_name);

TEST(AppsSerial, TspGreedyNeverBeatsOptimum) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    apps::TspParams p;
    p.cities = 8;
    p.seed = seed;
    const auto opt = apps::tsp_serial(p);
    EXPECT_GT(opt, 0);
  }
}

TEST(AppsSerial, FftRoundTripIsIdentityish) {
  apps::FftParams p;
  p.n = 16;
  p.iters = 3;
  // Repeated forward+inverse round trips keep the checksum stable.
  apps::FftParams one = p;
  one.iters = 1;
  EXPECT_NEAR(apps::fft3d_serial(p), apps::fft3d_serial(one), 1e-6);
}

}  // namespace
}  // namespace tmkgm::cluster
