// Heat diffusion on a shared 2-D plate — the workload class the paper's
// introduction motivates (iterative stencil codes on clusters of
// workstations). Runs the same Jacobi-style solver over both substrates
// and reports the execution-time gap and the protocol traffic behind it.
//
//   $ ./examples/heat_diffusion [grid=512] [iters=20] [nodes=8]
#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.hpp"
#include "tmk/shared_array.hpp"

using namespace tmkgm;

namespace {

double solve(tmk::Tmk& tmk, std::size_t n, int iters) {
  const int me = tmk.proc_id();
  const int np = tmk.n_procs();
  auto cur = tmk::Shared2D<double>::alloc(tmk, n, n);
  auto next = tmk::Shared2D<double>::alloc(tmk, n, n);

  const std::size_t rows = n / static_cast<std::size_t>(np);
  const std::size_t first = static_cast<std::size_t>(me) * rows;
  const std::size_t last = me == np - 1 ? n : first + rows;

  // Hot left edge, cold elsewhere.
  for (auto* g : {&cur, &next}) {
    for (std::size_t r = first; r < last; ++r) {
      auto row = g->row_rw(r);
      for (std::size_t c = 0; c < n; ++c) row[c] = c == 0 ? 100.0 : 0.0;
    }
  }
  tmk.barrier(0);

  auto* src = &cur;
  auto* dst = &next;
  for (int it = 0; it < iters; ++it) {
    for (std::size_t r = std::max<std::size_t>(first, 1);
         r < std::min(last, n - 1); ++r) {
      auto up = src->row_ro(r - 1);
      auto mid = src->row_ro(r);
      auto down = src->row_ro(r + 1);
      auto out = dst->row_rw(r);
      for (std::size_t c = 1; c + 1 < n; ++c) {
        out[c] = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
      }
      tmk.compute_work(static_cast<double>(n) * 5.0);
    }
    tmk.barrier(1);
    std::swap(src, dst);
  }

  // Probe a cell near the hot edge (the centre stays cold for a while).
  double probe = 0.0;
  if (me == 0) probe = src->get(n / 2, 2);
  tmk.barrier(2);
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t grid = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 20;
  const int nodes = argc > 3 ? std::atoi(argv[3]) : 8;

  std::printf("heat diffusion: %zux%zu grid, %d iterations, %d nodes\n\n",
              grid, grid, iters, nodes);

  for (auto kind :
       {cluster::SubstrateKind::FastGm, cluster::SubstrateKind::UdpGm}) {
    cluster::ClusterConfig cfg;
    cfg.n_procs = nodes;
    cfg.kind = kind;
    cfg.tmk.arena_bytes = 2 * grid * grid * sizeof(double) + (1u << 20);

    double probe = 0;
    cluster::Cluster c(cfg);
    auto result = c.run_tmk([&](tmk::Tmk& tmk, cluster::NodeEnv& env) {
      const double v = solve(tmk, grid, iters);
      if (env.id == 0) probe = v;
    });

    std::uint64_t faults = 0, diffs = 0;
    for (const auto& s : result.tmk_stats) {
      faults += s.read_faults + s.write_faults;
      diffs += s.diffs_applied;
    }
    std::printf("%-8s  time %8.3f ms   probe=%.6f   faults=%llu diffs=%llu\n",
                cluster::to_string(kind), to_ms(result.duration), probe,
                static_cast<unsigned long long>(faults),
                static_cast<unsigned long long>(diffs));
  }
  return 0;
}
