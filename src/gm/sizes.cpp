#include "gm/sizes.hpp"

#include "util/check.hpp"

namespace tmkgm::gm {

int min_size_for_length(std::size_t len) {
  for (int s = kMinSize; s <= kMaxSize; ++s) {
    if (len <= max_length_for_size(s)) return s;
  }
  TMKGM_CHECK_MSG(false, "message of " << len << " bytes exceeds size class "
                                       << kMaxSize << " ("
                                       << max_length_for_size(kMaxSize)
                                       << " bytes)");
}

}  // namespace tmkgm::gm
