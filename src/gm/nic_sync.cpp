#include "gm/nic_sync.hpp"

#include "util/check.hpp"

namespace tmkgm::gm {

namespace {
/// A firmware sync packet: command + ids; rides the fabric like any small
/// message.
constexpr std::uint64_t kFwPacketBytes = 16;
/// Firmware processing per sync packet at the root LANai, beyond the
/// generic per-message NIC occupancy already modeled by the fabric.
constexpr SimTime kFwOp = 500;
}  // namespace

NicSyncSystem::NicSyncSystem(GmSystem& gm, int root, int n_locks)
    : gm_(gm), root_(root), locks_(static_cast<std::size_t>(n_locks)) {
  const auto n = static_cast<std::size_t>(gm_.n_nodes());
  barrier_waiters_.resize(n);
  lock_waiters_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& node = gm_.nic(static_cast<int>(i)).node();
    barrier_waiters_[i] = std::make_unique<sim::Condition>(node);
    lock_waiters_[i] = std::make_unique<sim::Condition>(node);
  }
}

void NicSyncSystem::firmware_send(int src, int dst,
                                  std::function<void()> on_arrival) {
  packets_.fetch_add(1, std::memory_order_relaxed);
  auto& engine = gm_.network().engine();
  // The arrival handler runs "in firmware" at dst: it touches root NIC
  // state (dst == root_) or wakes dst's host, so it is dst-affine.
  if (src == dst) {
    // Local NIC command: just the firmware op.
    engine.after_node(dst, kFwOp, std::move(on_arrival));
    return;
  }
  gm_.network().transfer(src, dst, kFwPacketBytes,
                         [&engine, dst, fn = std::move(on_arrival)]() mutable {
                           engine.after_node(dst, kFwOp, std::move(fn));
                         });
}

void NicSyncSystem::wake(int node_id, sim::Condition& cond) {
  // The host notices the completion with its usual receive-poll cost; the
  // charge lands when the woken node resumes (it is blocked on `cond`).
  (void)node_id;
  cond.signal();
}

void NicSyncSystem::barrier(int node_id) {
  auto& node = gm_.nic(node_id).node();
  TMKGM_CHECK_MSG(node.is_current(), "barrier outside node context");
  node.compute(gm_.network().cost().gm_host_send);  // post the command

  const int n = gm_.n_nodes();
  firmware_send(node_id, root_, [this, n] {
    ++arrived_;
    if (arrived_ < n) return;
    arrived_ = 0;
    ++stats_.barriers;
    // Root firmware multicasts the release.
    for (int p = 0; p < gm_.n_nodes(); ++p) {
      firmware_send(root_, p, [this, p] {
        wake(p, *barrier_waiters_[static_cast<std::size_t>(p)]);
      });
    }
  });

  barrier_waiters_[static_cast<std::size_t>(node_id)]->wait();
  node.compute(gm_.network().cost().gm_host_recv);  // notice the release
}

void NicSyncSystem::lock_acquire(int node_id, int lock) {
  TMKGM_CHECK(lock >= 0 &&
              static_cast<std::size_t>(lock) < locks_.size());
  auto& node = gm_.nic(node_id).node();
  TMKGM_CHECK_MSG(node.is_current(), "lock_acquire outside node context");
  node.compute(gm_.network().cost().gm_host_send);

  firmware_send(node_id, root_, [this, node_id, lock] {
    FwLock& L = locks_[static_cast<std::size_t>(lock)];
    if (L.holder < 0) {
      L.holder = node_id;
      ++stats_.lock_grants;
      firmware_send(root_, node_id, [this, node_id] {
        wake(node_id, *lock_waiters_[static_cast<std::size_t>(node_id)]);
      });
    } else {
      L.queue.push_back(node_id);
    }
  });

  lock_waiters_[static_cast<std::size_t>(node_id)]->wait();
  node.compute(gm_.network().cost().gm_host_recv);
}

void NicSyncSystem::lock_release(int node_id, int lock) {
  TMKGM_CHECK(lock >= 0 &&
              static_cast<std::size_t>(lock) < locks_.size());
  auto& node = gm_.nic(node_id).node();
  TMKGM_CHECK_MSG(node.is_current(), "lock_release outside node context");
  node.compute(gm_.network().cost().gm_host_send);

  firmware_send(node_id, root_, [this, node_id, lock] {
    FwLock& L = locks_[static_cast<std::size_t>(lock)];
    TMKGM_CHECK_MSG(L.holder == node_id, "firmware lock released by non-holder");
    if (L.queue.empty()) {
      L.holder = -1;
      return;
    }
    const int next = L.queue.front();
    L.queue.pop_front();
    L.holder = next;
    ++stats_.lock_grants;
    firmware_send(root_, next, [this, next] {
      wake(next, *lock_waiters_[static_cast<std::size_t>(next)]);
    });
  });
}

}  // namespace tmkgm::gm
