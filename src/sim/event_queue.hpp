// Cancellable virtual-time event queue with batched insertion.
//
// Events are (time, sequence) ordered; the sequence number makes ties — and
// therefore the whole simulation — deterministic. Cancellation is lazy: the
// handle flips a flag and the queue skips dead entries on pop.
//
// Insertion is staged: push()/post() append to a small pending vector
// (sequence numbers are assigned at stage time, so ordering is unaffected)
// and the heap absorbs the whole batch at the next pop() or
// next_live_time(). A node quantum that emits several sends — the common
// substrate pattern — therefore costs one bulk heap operation at its yield
// point instead of one sift-up per send. next_live_time() flushes before
// answering, so its result is always exact (the compute-coalescing decision
// depends on that).
//
// Two insertion flavours:
//  - push(): returns a cancellable EventHandle (one small shared EventState
//    allocation).
//  - post(): fire-and-forget, no handle, no control block — for the hot
//    paths (message deliveries, acks) that never cancel.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/time.hpp"

namespace tmkgm::sim {

class EventQueue;
class Engine;

/// Shared state between a queue entry and any outstanding handle. The flags
/// are relaxed atomics so the parallel engine may cancel from one shard
/// while another pops; ordering guarantees come from its window barriers.
struct EventState {
  std::atomic<bool> cancelled{false};
  std::atomic<bool> fired{false};
};

/// Copyable handle to a scheduled event; cancel() is idempotent and safe
/// after the event has fired (it becomes a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
  }

  bool pending() const {
    return state_ && !state_->cancelled.load(std::memory_order_relaxed) &&
           !state_->fired.load(std::memory_order_relaxed);
  }

 private:
  friend class EventQueue;
  friend class Engine;  // parallel mode hands out handles to staged events
  explicit EventHandle(std::shared_ptr<EventState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<EventState> state_;
};

class EventQueue {
 public:
  /// A popped, live event ready to fire.
  struct Popped {
    SimTime at = 0;
    std::function<void()> fn;
  };

  /// A scheduled event. Public so the parallel planner can pop entries
  /// with their ordering key and affinity intact, and re-insert unexecuted
  /// remainders without renumbering them.
  struct Entry {
    SimTime at = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    std::shared_ptr<EventState> state;  // null for post() entries
    /// Scheduling affinity: the node whose shard must execute this event,
    /// or -1 for globally-ordered events the planner runs serially.
    std::int32_t aff = -1;
    /// Lookahead hint: executing this event may schedule onto another
    /// node after as little as the engine's short-reply lookahead (e.g. a
    /// delivery that acks the sender at NIC-level latency). Caps the
    /// window it is popped into.
    bool short_reply = false;
    /// Re-cost capture: the schedule-record id assigned by the engine's
    /// CaptureSink at push time (0 = capture off / uncaptured).
    std::uint64_t capture_id = 0;

    bool dead() const {
      return state && state->cancelled.load(std::memory_order_relaxed);
    }
  };

  EventHandle push(SimTime at, std::function<void()> fn) {
    return push(at, std::move(fn), -1, false);
  }
  EventHandle push(SimTime at, std::function<void()> fn, std::int32_t aff,
                   bool short_reply, std::uint64_t capture_id = 0);

  /// Fire-and-forget insertion: no handle, no shared control block.
  void post(SimTime at, std::function<void()> fn) {
    post(at, std::move(fn), -1, false);
  }
  void post(SimTime at, std::function<void()> fn, std::int32_t aff,
            bool short_reply, std::uint64_t capture_id = 0);

  /// Pops the next live event into `out`; false when the queue is empty.
  bool pop(Popped& out);

  /// Zero-move pop for the hot sequential loop: returns the next live
  /// entry, leaving it parked in its pool slot so the caller can invoke
  /// entry->fn in place (staging new events is fine — slots are stable).
  /// Call release_fired() afterwards to recycle the slot. nullptr when
  /// empty.
  const Entry* pop_fired();
  void release_fired();

  /// Full-entry pop for the parallel planner; false when empty.
  bool pop_entry(Entry& out);

  /// The next live entry without popping it (flushes and prunes first);
  /// nullptr when empty. Invalidated by any mutation.
  const Entry* peek();

  /// Draws the next sequence number without scheduling anything. Barrier
  /// replay uses this to hand staged events the same numbers the
  /// sequential engine would have assigned at their push sites.
  std::uint64_t alloc_seq() { return next_seq_++; }

  /// Inserts an entry whose sequence number was already assigned (via
  /// alloc_seq(), or an unexecuted remainder from pop_entry()).
  void insert(Entry e);

  /// Time of the earliest live event, or nullopt when none is scheduled.
  /// Flushes staged entries and prunes cancelled tops, so the answer is
  /// exact.
  std::optional<SimTime> next_live_time();

  bool empty_of_live() const { return heap_.empty() && pending_.empty(); }
  std::uint64_t scheduled_count() const { return next_seq_; }

  /// Batching instrumentation: bulk flushes performed / entries staged.
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t staged() const { return next_seq_; }

 private:
  // The heap orders trivially-copyable 24-byte keys; the fat Entry (a
  // std::function, a shared_ptr) sits still in a slot pool. Sifting moves
  // PODs and the comparator reads inline fields — no pointer chase, no
  // per-level function-object moves. The key carries the pool entry's
  // address directly (deque slots never move), so the hot paths do no
  // index arithmetic.
  struct Key {
    SimTime at;
    std::uint64_t seq;
    Entry* e;
  };
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void stage(SimTime at, std::function<void()> fn,
             std::shared_ptr<EventState> state, std::int32_t aff,
             bool short_reply, std::uint64_t capture_id);
  void flush() {
    if (!pending_.empty()) flush_pending();
  }
  void flush_pending();
  void prune_dead_top();
  Entry* alloc_entry() {
    if (!free_entries_.empty()) {
      Entry* e = free_entries_.back();
      free_entries_.pop_back();
      return e;
    }
    return alloc_entry_slow();
  }
  Entry* alloc_entry_slow();
  void release_entry(Entry* e) {
    e->fn = nullptr;
    e->state.reset();
    free_entries_.push_back(e);
  }

  // Deque, not vector: growth must not move entries — a std::function is
  // expensive to relocate, and heap keys/peek() hold pool addresses.
  std::deque<Entry> pool_;          // slot storage for scheduled entries
  std::vector<Entry*> free_entries_;
  std::vector<Key> heap_;     // binary heap under Later
  std::vector<Key> pending_;  // staged since the last flush
  std::uint64_t next_seq_ = 0;
  std::uint64_t flushes_ = 0;
  Entry* fired_ = nullptr;  // entry parked by pop_fired()
};

}  // namespace tmkgm::sim
