// TreadMarks protocol integration tests, parameterized over all three
// communication substrates: the identical protocol must produce identical
// *values* on FAST/GM, UDP/GM and FAST/IB (only the timing differs).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/cluster.hpp"
#include "tmk/shared_array.hpp"
#include "util/check.hpp"

namespace tmkgm::cluster {
namespace {

using tmk::Shared2D;
using tmk::SharedArray;
using tmk::Tmk;

class TmkProtocolTest : public ::testing::TestWithParam<SubstrateKind> {
 protected:
  ClusterConfig base_config(int n) {
    ClusterConfig cfg;
    cfg.n_procs = n;
    cfg.kind = GetParam();
    cfg.tmk.arena_bytes = 4u << 20;
    cfg.event_limit = 100'000'000;
    return cfg;
  }
};

TEST_P(TmkProtocolTest, MallocIsDeterministicAndPageAligned) {
  Cluster c(base_config(3));
  std::vector<tmk::GlobalPtr> ptrs(3);
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    const auto a = tmk.malloc(100);
    const auto b = tmk.malloc(5000);
    EXPECT_EQ(a % tmk.config().page_size, 0u);
    EXPECT_EQ(b % tmk.config().page_size, 0u);
    EXPECT_GE(b - a, 4096u);
    ptrs[static_cast<std::size_t>(env.id)] = b;
  });
  EXPECT_EQ(ptrs[0], ptrs[1]);
  EXPECT_EQ(ptrs[1], ptrs[2]);
}

TEST_P(TmkProtocolTest, DistributeBroadcastsPointer) {
  Cluster c(base_config(4));
  std::vector<std::uint64_t> got(4);
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    std::uint64_t value = 0;
    if (env.id == 0) value = 0xfeedface;
    tmk.distribute(&value, sizeof(value));
    got[static_cast<std::size_t>(env.id)] = value;
  });
  for (auto v : got) EXPECT_EQ(v, 0xfeedfaceu);
}

TEST_P(TmkProtocolTest, BarrierSynchronizes) {
  Cluster c(base_config(4));
  std::vector<SimTime> after(4);
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    env.node.compute(microseconds(100.0 * env.id));  // skewed arrivals
    tmk.barrier(0);
    after[static_cast<std::size_t>(env.id)] = env.node.now();
  });
  // Everyone leaves the barrier no earlier than the latest arrival.
  for (auto t : after) EXPECT_GE(t, microseconds(300.0));
}

TEST_P(TmkProtocolTest, WritesVisibleAfterBarrier) {
  Cluster c(base_config(4));
  std::vector<int> sums(4, -1);
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 1024);
    // Each proc writes its slice.
    const std::size_t slice = 1024 / 4;
    auto mine = arr.span_rw(static_cast<std::size_t>(env.id) * slice, slice);
    for (auto& v : mine) v = env.id + 1;
    tmk.barrier(0);
    // Everyone reads everything.
    int sum = 0;
    for (std::size_t i = 0; i < 1024; ++i) sum += arr.get(i);
    sums[static_cast<std::size_t>(env.id)] = sum;
  });
  const int expected = 256 * (1 + 2 + 3 + 4);
  for (auto s : sums) EXPECT_EQ(s, expected);
}

TEST_P(TmkProtocolTest, FalseSharingMergesConcurrentWriters) {
  // All four procs write disjoint words of the SAME page between barriers;
  // the multiple-writer protocol must merge all writes.
  Cluster c(base_config(4));
  std::vector<bool> ok(4, false);
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 256);  // one page
    tmk.barrier(0);
    for (int i = env.id; i < 256; i += 4) {
      arr.put(static_cast<std::size_t>(i), 1000 + i);
    }
    tmk.barrier(1);
    bool good = true;
    for (std::size_t i = 0; i < 256; ++i) {
      if (arr.get(i) != 1000 + static_cast<int>(i)) good = false;
    }
    ok[static_cast<std::size_t>(env.id)] = good;
  });
  for (auto o : ok) EXPECT_TRUE(o);
}

TEST_P(TmkProtocolTest, FastPathCacheInvalidatedAcrossBarrier) {
  // The inline access-mode cache must never satisfy an access the protocol
  // would fault on: a repeated read in the same interval hits the cache,
  // but after a barrier delivers a write notice the same read must fault
  // again and see the new value, not the cached page.
  Cluster c(base_config(2));
  int second_read = -1;
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 64);
    tmk.barrier(0);
    if (env.id == 1) arr.put(0, 41);
    tmk.barrier(1);
    if (env.id == 0) {
      EXPECT_EQ(arr.get(0), 41);  // faults, page becomes valid
      const auto cached = tmk.stats().read_faults;
      EXPECT_EQ(arr.get(0), 41);  // same interval: served by the cache
      EXPECT_EQ(tmk.stats().read_faults, cached);
    }
    tmk.barrier(2);
    if (env.id == 1) arr.put(0, 42);
    tmk.barrier(3);
    if (env.id == 0) {
      const auto before = tmk.stats().read_faults;
      second_read = arr.get(0);  // invalidated at the barrier: must re-fault
      EXPECT_EQ(tmk.stats().read_faults, before + 1);
    }
    tmk.barrier(4);
  });
  EXPECT_EQ(second_read, 42);
}

TEST_P(TmkProtocolTest, LockMutualExclusionCounter) {
  constexpr int kN = 4;
  constexpr int kRounds = 25;
  Cluster c(base_config(kN));
  int final_value = -1;
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto counter = SharedArray<std::int32_t>::alloc(tmk, 1);
    tmk.barrier(0);
    for (int r = 0; r < kRounds; ++r) {
      tmk.lock_acquire(1);
      counter.put(0, counter.get(0) + 1);
      tmk.lock_release(1);
    }
    tmk.barrier(1);
    if (env.id == 0) final_value = counter.get(0);
  });
  EXPECT_EQ(final_value, kN * kRounds);
}

TEST_P(TmkProtocolTest, LockHandoffCarriesLatestData) {
  // Token passing: each proc appends to a shared log under the lock; the
  // log must be consistent at the end (release consistency through the
  // lock chain, not just barriers).
  constexpr int kN = 3;
  Cluster c(base_config(kN));
  std::vector<std::int32_t> log_out;
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto log = SharedArray<std::int32_t>::alloc(tmk, 64);
    auto cursor = SharedArray<std::int32_t>::alloc(tmk, 1);
    tmk.barrier(0);
    for (int r = 0; r < 5; ++r) {
      tmk.lock_acquire(2);
      const auto pos = cursor.get(0);
      log.put(static_cast<std::size_t>(pos), env.id);
      cursor.put(0, pos + 1);
      tmk.lock_release(2);
    }
    tmk.barrier(1);
    if (env.id == 0) {
      const auto n = cursor.get(0);
      for (std::int32_t i = 0; i < n; ++i) {
        log_out.push_back(log.get(static_cast<std::size_t>(i)));
      }
    }
  });
  ASSERT_EQ(log_out.size(), 15u);
  // Every proc appears exactly 5 times (no lost updates).
  std::vector<int> counts(3, 0);
  for (auto v : log_out) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 3);
    ++counts[static_cast<std::size_t>(v)];
  }
  EXPECT_EQ(counts, (std::vector<int>{5, 5, 5}));
}

TEST_P(TmkProtocolTest, IndirectLockAcquireViaForwarding) {
  // Lock 1's manager is proc 1 (lock % n). Proc 2 acquires and releases;
  // then proc 0 acquires — the request goes to manager 1, which forwards
  // to owner 2 (the paper's "indirect" case).
  Cluster c(base_config(3));
  auto result = c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    tmk.barrier(0);
    if (env.id == 2) {
      tmk.lock_acquire(1);
      tmk.lock_release(1);
    }
    tmk.barrier(1);
    if (env.id == 0) {
      tmk.lock_acquire(1);
      tmk.lock_release(1);
    }
    tmk.barrier(2);
  });
  // Proc 1 (manager, never a user) must have forwarded at least once.
  EXPECT_GE(result.substrate_stats[1].forwards_sent, 1u);
}

TEST_P(TmkProtocolTest, UnwrittenPagesReadAsZero) {
  Cluster c(base_config(3));
  std::vector<bool> ok(3, false);
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int64_t>::alloc(tmk, 2048);  // 4 pages
    bool good = true;
    for (std::size_t i = 0; i < 2048; i += 97) {
      if (arr.get(i) != 0) good = false;
    }
    ok[static_cast<std::size_t>(env.id)] = good;
    tmk.barrier(0);
  });
  for (auto o : ok) EXPECT_TRUE(o);
}

TEST_P(TmkProtocolTest, RepeatedProducerConsumerRounds) {
  // Proc 0 writes a page, barrier, others read, barrier — many rounds.
  // Exercises repeated invalidation / diff fetch / re-twin cycles.
  constexpr int kRounds = 8;
  Cluster c(base_config(4));
  int failures = 0;
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 1024);
    for (int r = 0; r < kRounds; ++r) {
      if (env.id == 0) {
        auto w = arr.span_rw(0, 1024);
        for (std::size_t i = 0; i < 1024; ++i) {
          w[i] = static_cast<std::int32_t>(r * 10000 + i);
        }
      }
      tmk.barrier(0);
      auto ro = arr.span_ro(0, 1024);
      for (std::size_t i = 0; i < 1024; i += 131) {
        if (ro[i] != static_cast<std::int32_t>(r * 10000 + i)) ++failures;
      }
      tmk.barrier(1);
    }
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(TmkProtocolTest, BidirectionalExchange) {
  // Both neighbours write their half and read the other's half each round
  // (Jacobi-like), including a falsely-shared middle page.
  Cluster c(base_config(2));
  int failures = 0;
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 1500);
    const std::size_t half = 750;
    const std::size_t lo = env.id == 0 ? 0 : half;
    for (int r = 1; r <= 5; ++r) {
      auto w = arr.span_rw(lo, half);
      for (std::size_t i = 0; i < half; ++i) {
        w[i] = static_cast<std::int32_t>(r * 1000 + env.id);
      }
      tmk.barrier(0);
      const std::size_t other = env.id == 0 ? half : 0;
      auto ro = arr.span_ro(other, half);
      for (std::size_t i = 0; i < half; i += 53) {
        if (ro[i] != static_cast<std::int32_t>(r * 1000 + (1 - env.id))) {
          ++failures;
        }
      }
      tmk.barrier(1);
    }
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(TmkProtocolTest, ManyIntervalsOnOnePageChunksDiffResponses) {
  // Proc 0 dirties the whole page across many lock-bracketed intervals;
  // proc 1 then faults once and must pull ALL the diffs (the response
  // overflows one message and exercises the continuation path).
  Cluster c(base_config(2));
  std::int32_t last = -1;
  std::uint64_t applied = 0;
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    // Two pages; work on the second, whose manager is proc 1 (the reader),
    // so the data can only move via diffs from the writer.
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 2048);
    const std::size_t base = 1024;
    tmk.barrier(0);
    if (env.id == 0) {
      for (int r = 0; r < 12; ++r) {
        tmk.lock_acquire(0);
        auto w = arr.span_rw(base, 1024);
        for (std::size_t i = 0; i < 1024; ++i) {
          w[i] = static_cast<std::int32_t>(r);
        }
        tmk.lock_release(0);
      }
    }
    tmk.barrier(1);
    if (env.id == 1) {
      last = arr.get(base + 512);
      applied = tmk.stats().diffs_applied;
    }
  });
  EXPECT_EQ(last, 11);
  EXPECT_GE(applied, 12u);  // one full-page diff per interval
}

TEST_P(TmkProtocolTest, StatsReflectProtocolActivity) {
  Cluster c(base_config(2));
  auto result = c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 1024);
    if (env.id == 0) {
      auto w = arr.span_rw(0, 1024);
      for (auto& v : w) v = 42;
    }
    tmk.barrier(0);
    if (env.id == 1) {
      EXPECT_EQ(arr.get(0), 42);
    }
    tmk.barrier(1);
  });
  const auto& s0 = result.tmk_stats[0];
  const auto& s1 = result.tmk_stats[1];
  EXPECT_EQ(s0.twins_created, 1u);
  EXPECT_EQ(s0.intervals_created, 1u);
  EXPECT_GE(s1.read_faults, 1u);
  // Proc 1's first access fetches the base copy from the page's manager
  // (proc 0), whose applied clock already covers the write — so the fetch
  // itself may satisfy the notice with no separate diff traffic.
  EXPECT_EQ(s1.page_fetches, 1u);
  EXPECT_EQ(s0.barriers, 2u);
  EXPECT_EQ(s1.barriers, 2u);
}

TEST_P(TmkProtocolTest, GarbageCollectionPreservesCorrectness) {
  ClusterConfig cfg = base_config(3);
  cfg.tmk.gc_high_water = 20'000;  // tiny: force GC rounds
  Cluster c(cfg);
  int failures = 0;
  auto result = c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 3072);  // 3 pages
    for (int r = 1; r <= 10; ++r) {
      const std::size_t slice = 1024;
      auto w = arr.span_rw(static_cast<std::size_t>(env.id) * slice, slice);
      for (std::size_t i = 0; i < slice; ++i) {
        w[i] = static_cast<std::int32_t>(r * 100 + env.id);
      }
      tmk.barrier(0);
      for (int p = 0; p < 3; ++p) {
        const auto v = arr.get(static_cast<std::size_t>(p) * 1024 + 7);
        if (v != r * 100 + p) ++failures;
      }
      tmk.barrier(1);
    }
  });
  EXPECT_EQ(failures, 0);
  std::uint64_t gc_rounds = 0;
  for (const auto& s : result.tmk_stats) gc_rounds += s.gc_rounds;
  EXPECT_GT(gc_rounds, 0u);
}

TEST_P(TmkProtocolTest, DeterministicResults) {
  auto once = [&] {
    Cluster c(base_config(3));
    auto r = c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
      auto arr = SharedArray<std::int32_t>::alloc(tmk, 512);
      for (int round = 0; round < 3; ++round) {
        tmk.lock_acquire(0);
        arr.put(0, arr.get(0) + env.id + 1);
        tmk.lock_release(0);
        tmk.barrier(0);
      }
    });
    return r.duration;
  };
  EXPECT_EQ(once(), once());
}

TEST_P(TmkProtocolTest, FreeListReuseIsDeterministic) {
  Cluster c(base_config(3));
  std::vector<tmk::GlobalPtr> reused(3);
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    const auto a = tmk.malloc(8000);
    const auto b = tmk.malloc(8000);
    tmk.free(a, 8000);
    const auto r1 = tmk.malloc(8000);  // reuses a
    EXPECT_EQ(r1, a);
    const auto fresh = tmk.malloc(8000);  // freelist empty again
    EXPECT_GT(fresh, b);
    reused[static_cast<std::size_t>(env.id)] = r1;
  });
  EXPECT_EQ(reused[0], reused[1]);
  EXPECT_EQ(reused[1], reused[2]);
}

TEST_P(TmkProtocolTest, ChunkedHomesReducePageFetches) {
  // Block-partitioned access with matching chunked homes keeps the base
  // copies local; per-page round-robin fetches most of them remotely.
  auto fetches = [&](std::uint32_t chunk) {
    ClusterConfig cfg = base_config(4);
    cfg.tmk.home_chunk_pages = chunk;
    Cluster c(cfg);
    auto result = c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
      auto arr = SharedArray<std::int32_t>::alloc(tmk, 64 * 1024);  // 64 pages
      const std::size_t slice = 64 * 1024 / 4;
      auto w = tmk.proc_id() == env.id  // always true; silences unused
                   ? arr.span_rw(static_cast<std::size_t>(env.id) * slice,
                                 slice)
                   : arr.span_rw(0, 1);
      for (auto& v : w) v = env.id;
      tmk.barrier(0);
    });
    std::uint64_t total = 0;
    for (const auto& s : result.tmk_stats) total += s.page_fetches;
    return total;
  };
  const auto rr = fetches(1);
  const auto chunked = fetches(16);  // 16-page chunks align with the slices
  EXPECT_EQ(chunked, 0u);
  EXPECT_GT(rr, 0u);
}

TEST_P(TmkProtocolTest, ProtocolBytesCountTheWriteNoticePageList) {
  // Proc 0 dirties three pages in one interval. The interval record costs
  // 64 bytes fixed + 4 per vector-clock entry + 4 per page id in the
  // write-notice list: 64 + 4*2 + 4*3 = 84 on both procs (no diffs have
  // been created or fetched). The page-list term — 12 bytes here, and the
  // dominant term for page-heavy workloads — was previously omitted,
  // which made GC trip late against gc_high_water.
  Cluster c(base_config(2));
  std::vector<std::size_t> pb(2, 0);
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 3 * 1024);  // 3 pages
    if (env.id == 0) {
      for (std::size_t pg = 0; pg < 3; ++pg) arr.put(pg * 1024, 1);
    }
    tmk.barrier(0);
    pb[static_cast<std::size_t>(env.id)] = tmk.protocol_bytes();
    tmk.barrier(1);
  });
  EXPECT_EQ(pb[0], 84u);
  EXPECT_EQ(pb[1], 84u);
}

TEST_P(TmkProtocolTest, FreeRejectsDoubleFree) {
  // A double free used to push the block onto free_lists_ twice, letting
  // malloc hand the same pages to two live allocations.
  Cluster c(base_config(2));
  EXPECT_THROW(c.run_tmk([](Tmk& tmk, NodeEnv& env) {
                 if (env.id != 0) return;
                 const auto a = tmk.malloc(100);
                 tmk.free(a, 100);
                 tmk.free(a, 100);
               }),
               CheckError);
}

TEST_P(TmkProtocolTest, FreeRejectsInteriorPointer) {
  // Freeing into the middle of a live block would overlap the remainder
  // of the allocation with whatever malloc hands out next.
  Cluster c(base_config(2));
  EXPECT_THROW(c.run_tmk([](Tmk& tmk, NodeEnv& env) {
                 if (env.id != 0) return;
                 const auto a = tmk.malloc(2 * tmk.config().page_size);
                 tmk.free(a + tmk.config().page_size,
                          tmk.config().page_size);
               }),
               CheckError);
}

TEST_P(TmkProtocolTest, FreeThenMallocStillReusesTheBlock) {
  // The liveness tracking must not break the legitimate free-list reuse
  // path (same-size blocks are recycled deterministically).
  Cluster c(base_config(2));
  std::vector<bool> reused(2, false);
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    const auto a = tmk.malloc(3000);
    tmk.free(a, 3000);
    const auto b = tmk.malloc(3000);
    tmk.free(b, 3000);
    reused[static_cast<std::size_t>(env.id)] = a == b;
  });
  EXPECT_TRUE(reused[0]);
  EXPECT_TRUE(reused[1]);
}

TEST_P(TmkProtocolTest, ManagerPrunesStaleForwardedEntryOnNewerRequest) {
  // Forwarded-chain bookkeeping at the manager: round 1 creates an entry
  // for origin 2, round 2 one for origin 1. When origin 2's NEWER request
  // arrives in round 4 and is granted directly (the token rests at the
  // manager), the stale round-1 entry must be pruned — it used to live
  // forever, and a recycled (origin, seq) pair after the substrate's
  // dedup window rotated could spuriously re-drive the dead forward.
  Cluster c(base_config(3));
  std::size_t after_round2 = 0, after_round4 = 0;
  c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    // Round 1: p1 grabs the lock and holds it while p2 queues up — the
    // manager forwards p2's request to p1 and records it.
    if (env.id == 1) {
      tmk.lock_acquire(0);
      env.node.compute(microseconds(100.0));
      tmk.lock_release(0);
    } else if (env.id == 2) {
      env.node.compute(microseconds(10.0));
      tmk.lock_acquire(0);
      tmk.lock_release(0);
    }
    tmk.barrier(0);
    // Round 2: p1 queues behind the current owner p2.
    if (env.id == 1) {
      tmk.lock_acquire(0);
      tmk.lock_release(0);
    }
    tmk.barrier(1);
    if (env.id == 0) after_round2 = tmk.lock_forwarded_entries(0);
    // Round 3: the manager takes the token home.
    if (env.id == 0) {
      tmk.lock_acquire(0);
      tmk.lock_release(0);
    }
    tmk.barrier(2);
    // Round 4: origin 2's newer request is granted directly by the
    // manager; its stale entry must go away without a replacement.
    if (env.id == 2) {
      tmk.lock_acquire(0);
      tmk.lock_release(0);
    }
    tmk.barrier(3);
    if (env.id == 0) after_round4 = tmk.lock_forwarded_entries(0);
  });
  EXPECT_EQ(after_round2, 2u);  // origins 1 and 2 both on file
  EXPECT_EQ(after_round4, 1u);  // origin 2's stale entry pruned
}

/// Drops the nth (0-based) datagram matching (src, dst, dst_port).
udpnet::UdpSystem::DropFilter drop_nth(int src, int dst, int port, int n,
                                       int& seen) {
  return [src, dst, port, n, &seen](int s, int d, int p, std::size_t) {
    if (s != src || d != dst || p != port) return false;
    return seen++ == n;
  };
}

TEST(TmkLockChain, DuplicateRequestStillReDrivesALostForwardedGrant) {
  // The prune must not eat the duplicate path. Lock 1's manager is proc 1;
  // the token rests at proc 0, so p2's grant comes from chain member p0
  // and we drop it. p2's substrate retransmits the request to the MANAGER
  // with the same seq; the manager must recognize the duplicate and
  // re-drive the recorded forward to p0, whose dedup cache replays the
  // lost grant. Without that path p2 hangs forever.
  ClusterConfig cfg;
  cfg.n_procs = 3;
  cfg.kind = SubstrateKind::UdpGm;
  cfg.event_limit = 50'000'000;
  cfg.udpsub.retrans_timeout = milliseconds(2.0);
  cfg.udpsub.retrans_max = milliseconds(8.0);
  int grants_seen = 0;
  cfg.udp_drop_filter =
      drop_nth(0, 2, cfg.udpsub.reply_udp_port, 0, grants_seen);
  constexpr int kLock = 1;
  Cluster c(cfg);
  std::vector<std::int32_t> got(3, -1);
  auto result = c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
    auto arr = SharedArray<std::int32_t>::alloc(tmk, 16);
    if (env.id == 0) {
      tmk.lock_acquire(kLock);  // pulls the token from manager p1 to p0
      arr.put(0, arr.get(0) + 1);
      tmk.lock_release(kLock);
    } else if (env.id == 2) {
      env.node.compute(microseconds(500.0));
      tmk.lock_acquire(kLock);  // forwarded to p0; the grant is dropped
      arr.put(0, arr.get(0) + 1);
      tmk.lock_release(kLock);
    }
    tmk.barrier(0);
    got[static_cast<std::size_t>(env.id)] = arr.get(0);
  });
  for (auto v : got) EXPECT_EQ(v, 2);
  EXPECT_GE(result.substrate_stats[2].retransmits, 1u);
  EXPECT_GE(result.substrate_stats[0].duplicates_dropped, 1u);
}

TEST_P(TmkProtocolTest, OversizedDirtySetSplitsIntervalRecords) {
  // A single interval whose write-notice list exceeds the per-chunk wire
  // budget used to stall the run: pack_missing_intervals truncated the
  // chunk to zero records and Op::MoreIntervals pulled the same empty
  // chunk forever. close_interval now splits the dirty set into records
  // of at most max_notice_pages() pages each (~4k pages at a 32 KB
  // payload with two procs), so every record fits any message. 64-byte
  // pages keep the arena small while pushing the page count far past the
  // split threshold — and past the old stall threshold (~8k pages).
  for (auto pk : {proto::Kind::Lrc, proto::Kind::Hlrc}) {
    SCOPED_TRACE(proto::kind_name(pk));
    constexpr std::size_t kPages = 8300;
    constexpr std::size_t kWordsPerPage = 64 / sizeof(std::int32_t);
    ClusterConfig cfg = base_config(2);
    cfg.tmk.protocol = pk;
    cfg.tmk.page_size = 64;
    Cluster c(cfg);
    int failures = 0;
    auto result = c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
      auto arr =
          SharedArray<std::int32_t>::alloc(tmk, kPages * kWordsPerPage);
      if (env.id == 0) {
        for (std::size_t pg = 0; pg < kPages; ++pg) {
          arr.put(pg * kWordsPerPage, static_cast<std::int32_t>(pg) + 7);
        }
      }
      tmk.barrier(0);
      if (env.id == 1) {
        for (std::size_t pg : {std::size_t{0}, kPages / 2, kPages - 1}) {
          if (arr.get(pg * kWordsPerPage) !=
              static_cast<std::int32_t>(pg) + 7) {
            ++failures;
          }
        }
      }
      tmk.barrier(1);
    });
    EXPECT_EQ(failures, 0);
    // 8300 notices at ~4k per record must have produced several records.
    EXPECT_GE(result.tmk_stats[0].intervals_created, 3u);
  }
}

TEST_P(TmkProtocolTest, GcWithChunkedHomesKeepsBaseCopyFetchesSafe) {
  // Chunk-striped homes put every base-copy fetch on a remote node while
  // rotating writers keep invalidating those chunks; with a tiny GC high
  // water, intervals are discarded at the GC barrier while the validate
  // phase's fetches are still being serviced. A discarded interval must
  // never be reachable from an in-flight fetch (dangling write notices
  // were the historical failure mode).
  for (auto pk : {proto::Kind::Lrc, proto::Kind::Hlrc}) {
    SCOPED_TRACE(proto::kind_name(pk));
    ClusterConfig cfg = base_config(3);
    cfg.tmk.protocol = pk;
    cfg.tmk.home_chunk_pages = 4;
    // Small enough that HLRC trips too: it frees twins and diffs at the
    // flush, so only the interval records themselves build up pressure.
    cfg.tmk.gc_high_water = 1'000;
    Cluster c(cfg);
    int failures = 0;
    auto result = c.run_tmk([&](Tmk& tmk, NodeEnv& env) {
      auto arr = SharedArray<std::int32_t>::alloc(tmk, 12 * 1024);
      for (int r = 1; r <= 10; ++r) {
        // Each round every node writes a different 4-page band (one full
        // home chunk), so writers and homes keep changing places.
        const int band = (env.id + r) % 3;
        const std::size_t slice = 4 * 1024;
        auto w = arr.span_rw(static_cast<std::size_t>(band) * slice, slice);
        for (std::size_t i = 0; i < slice; ++i) {
          w[i] = static_cast<std::int32_t>(r * 1000 + band);
        }
        tmk.barrier(0);
        for (int band_chk = 0; band_chk < 3; ++band_chk) {
          const auto v = arr.get(static_cast<std::size_t>(band_chk) * slice +
                                 513);
          if (v != r * 1000 + band_chk) ++failures;
        }
        tmk.barrier(1);
      }
    });
    EXPECT_EQ(failures, 0);
    std::uint64_t gc_rounds = 0;
    for (const auto& s : result.tmk_stats) gc_rounds += s.gc_rounds;
    EXPECT_GT(gc_rounds, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TmkProtocolTest,
                         ::testing::Values(SubstrateKind::FastGm,
                                           SubstrateKind::UdpGm,
                                           SubstrateKind::FastIb),
                         [](const auto& info) {
                           return info.param == SubstrateKind::FastGm ? "FastGm"
                                  : info.param == SubstrateKind::UdpGm
                                      ? "UdpGm"
                                      : "FastIb";
                         });

}  // namespace
}  // namespace tmkgm::cluster
