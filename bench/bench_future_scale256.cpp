// F2 — the paper's §5 future work: "techniques for scaling a DSM system to
// a cluster having 256 nodes". We sweep the synchronization microbenchmarks
// and the pinned-memory budget from the evaluated 16 nodes toward 256 on
// FAST/GM, showing where the centralized barrier and the pre-posting
// formula start to hurt — the motivation for the paper's proposed NIC
// offload and rendezvous variants. A second sweep then carries the barrier
// past the 256-node wire ceiling to 1024 nodes and compares the flat
// proc-0 barrier against the K-ary combining tree (TmkConfig::
// barrier_arity): flat cost is O(n) at the root, tree cost is
// O(K log_K n).
#include <cstdio>

#include "bench_common.hpp"
#include "micro/micro.hpp"

int main() {
  using namespace tmkgm;
  using cluster::SubstrateKind;

  Table t({"nodes", "barrier (us)", "us/extra node", "pinned full (MB)",
           "pinned rendezvous (MB)"});
  double prev_barrier = 0;
  int prev_n = 0;
  for (int n : {16, 32, 64, 128, 256}) {
    auto cfg = bench::make_config(n, SubstrateKind::FastGm, 8u << 20);
    const double barrier = micro::barrier_us(cfg, 10);

    cluster::Cluster probe_full(cfg);
    const auto full = probe_full.run([](cluster::NodeEnv&) {}).pinned_bytes_node0;
    auto cfg_rdv = cfg;
    cfg_rdv.fastgm.rendezvous_large = true;
    cluster::Cluster probe_rdv(cfg_rdv);
    const auto rdv = probe_rdv.run([](cluster::NodeEnv&) {}).pinned_bytes_node0;

    const double slope =
        prev_n == 0 ? 0.0 : (barrier - prev_barrier) / (n - prev_n);
    t.add_row({std::to_string(n), Table::num(barrier, 1),
               prev_n == 0 ? "-" : Table::num(slope, 2),
               Table::num(static_cast<double>(full) / 1048576.0, 2),
               Table::num(static_cast<double>(rdv) / 1048576.0, 2)});
    prev_barrier = barrier;
    prev_n = n;
  }

  std::printf("=== F2 (paper sec 5 future work): toward 256 nodes ===\n%s\n",
              t.to_string().c_str());
  std::printf(
      "The centralized barrier cost grows linearly with node count (root\n"
      "serialization), and full pre-posting pins ~64K per peer — the two\n"
      "pressures the paper's future-work section names.\n\n");

  // Past the old uint8 wire ceiling: flat vs combining tree. Rendezvous
  // buffering for the large classes keeps the per-peer pre-post budget
  // sane at 512+ nodes; a 4 MB arena suffices for a barrier-only probe.
  Table t2({"nodes", "flat (us)", "flat us/node", "tree8 (us)",
            "tree8 us/node", "flat/tree8"});
  double prev_flat = 0, prev_tree = 0;
  prev_n = 0;
  for (int n : {64, 128, 256, 512, 1024}) {
    auto cfg = bench::make_config(n, SubstrateKind::FastGm, 4u << 20);
    cfg.fastgm.rendezvous_large = true;
    const double flat = micro::barrier_us(cfg, 10);
    auto cfg_tree = cfg;
    cfg_tree.tmk.barrier_arity = 8;
    const double tree = micro::barrier_us(cfg_tree, 10);
    t2.add_row(
        {std::to_string(n), Table::num(flat, 1),
         prev_n == 0 ? "-" : Table::num((flat - prev_flat) / (n - prev_n), 2),
         Table::num(tree, 1),
         prev_n == 0 ? "-" : Table::num((tree - prev_tree) / (n - prev_n), 2),
         Table::num(flat / tree, 2)});
    prev_flat = flat;
    prev_tree = tree;
    prev_n = n;
  }
  std::printf("=== Beyond 256: flat vs arity-8 combining tree ===\n%s\n",
              t2.to_string().c_str());
  std::printf(
      "Flat us/node stays roughly constant (cost O(n): every extra node is\n"
      "another serialized arrival at proc 0). The tree's us/node falls\n"
      "toward zero as n grows — cost O(K log_K n), one more level per 8x\n"
      "nodes — so the flat/tree ratio widens with scale.\n");
  return 0;
}
