// The coherence-protocol seam. Tmk owns the machinery every protocol
// shares — the arena and page tables, interval records and vector clocks,
// write-notice incorporation, the interval piggyback/pull wire format,
// locks, barriers, two-phase GC and allocation — and drives a Protocol
// object at the five points where homeless LRC and home-based LRC differ:
//
//   1. page-fault servicing (on_read_fault / on_write_fault),
//   2. the per-record body of an interval close (on_interval_close, runs
//      with async delivery masked),
//   3. the post-close step (on_interval_closed, unmasked — HLRC flushes
//      its staged diffs to the homes here, and a release does not
//      complete until every home has acked),
//   4. the GC discard phase for protocol-private state (on_gc_discard),
//   5. protocol-specific request ops (handle_request: LRC serves
//      Op::DiffRequest, HLRC applies Op::DiffFlush).
//
// Protocol implementations are friends of Tmk and operate on its state
// directly; what is protocol-private (LRC's diff store, HLRC's staged
// flushes) lives in the concrete class. See DESIGN.md §9.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "proto/kind.hpp"
#include "sub/substrate.hpp"
#include "tmk/ops.hpp"
#include "tmk/tmk.hpp"
#include "util/wire.hpp"

namespace tmkgm::proto {

/// Protocol-engine counters, surfaced as proto.* rows (HLRC and Adaptive
/// runs only, so default-protocol reports stay byte-identical to the
/// pre-seam output).
struct ProtoStats {
  std::uint64_t flush_msgs = 0;        ///< DiffFlush requests sent
  std::uint64_t flush_pages = 0;       ///< page diffs flushed to homes
  std::uint64_t flush_bytes = 0;       ///< DiffFlush payload bytes sent
  std::uint64_t home_applies = 0;      ///< diffs applied at this home
  std::uint64_t home_apply_bytes = 0;  ///< diff bytes applied at this home
  std::uint64_t home_fetches = 0;      ///< whole-page refetches from home
  std::uint64_t write_merges = 0;      ///< refetches merged over open twins
  // Adaptive-only rows (zero — and unreported — under lrc/hlrc).
  std::uint64_t promotes = 0;          ///< pages promoted to home mode
  std::uint64_t demotes = 0;           ///< pages demoted back to homeless
  std::uint64_t offers = 0;            ///< two-sided PageOffer flushes sent
  std::uint64_t offer_rejects = 0;     ///< offers the home turned down
  std::uint64_t rdma_flushes = 0;      ///< one-sided RDMA page flushes sent
  std::uint64_t rdma_flush_bytes = 0;  ///< RDMA flush payload bytes
  std::uint64_t home_fetch_hits = 0;   ///< home fetches installed (dominant)
  std::uint64_t home_fetch_misses = 0; ///< home fetches discarded (stale)
  std::uint64_t prefetch_pages = 0;    ///< sibling pages prefetch-installed
  std::uint64_t leases_granted = 0;    ///< flush leases granted by this home
  std::uint64_t leases_denied = 0;     ///< lease requests turned down
  std::uint64_t lease_catchups = 0;    ///< stale-denied, caught up, retried
  std::uint64_t leases_revoked = 0;    ///< leases reclaimed by this home
};

class Protocol {
 public:
  explicit Protocol(tmk::Tmk& t) : t_(t) {}
  virtual ~Protocol() = default;
  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual Kind kind() const = 0;
  const char* name() const { return kind_name(kind()); }
  const ProtoStats& stats() const { return stats_; }

  /// Makes `page` readable / writable (app context, async unmasked). The
  /// Tmk fault wrapper has already charged the fault cost and counted it.
  virtual void on_read_fault(tmk::PageId page) = 0;
  virtual void on_write_fault(tmk::PageId page) = 0;

  /// Per-record body of Tmk::close_interval (async masked). `pages` is the
  /// record's write-notice list; an oversized dirty set is split into
  /// several records, giving one call each.
  virtual void on_interval_close(std::uint32_t vt,
                                 std::span<const tmk::PageId> pages) = 0;

  /// Runs after close_interval unmasks, before the release/barrier message
  /// goes out. HLRC performs the blocking diff flush here, so any write
  /// notice a peer can ever learn is already applied at the home.
  virtual void on_interval_closed() = 0;

  /// GC discard phase: drop protocol-private state for own intervals with
  /// epoch < floor. Shared interval records are discarded by Tmk after.
  virtual void on_gc_discard(std::uint64_t floor_epoch) = 0;

  /// Bytes of protocol-private memory (LRC: the diff store) counted into
  /// Tmk::protocol_bytes() for the GC high-water check.
  virtual std::size_t private_bytes() const = 0;

  /// Dispatch for protocol-specific request ops (interrupt context; the
  /// shared per-request CPU charge is already paid). Returns false if the
  /// op is not one of this protocol's.
  virtual bool handle_request(tmk::Op op, const sub::RequestCtx& ctx,
                              WireReader& r) = 0;

 protected:
  tmk::Tmk& t_;
  ProtoStats stats_;
};

std::unique_ptr<Protocol> make_protocol(Kind kind, tmk::Tmk& t);

}  // namespace tmkgm::proto
