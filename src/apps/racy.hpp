// Deliberately racy demo app: the positive control for `--race-check`.
//
// Every proc read-modify-writes the same shared word with no intervening
// synchronization — the textbook data race LRC silently mangles (each
// proc's increment lands in its own diff; the merge keeps one). Alongside
// it, two patterns that must NOT be flagged: per-proc writes to disjoint
// words of the same page (multiple-writer, word granularity) and a
// lock-protected shared counter. A correct oracle reports word 0 and
// nothing else.
#pragma once

#include "apps/apps.hpp"

namespace tmkgm::apps {

struct RacyParams {
  int rounds = 3;
  /// int32 slots in the shared array: slot 0 is the racing word, slots
  /// 1..n_procs are per-proc (race-free), the last is lock-protected.
  std::size_t slots = 64;
};
/// checksum = proc 0's post-race view (whatever the diff merge produced)
/// plus the race-free slots; meaningful only as "the run completed".
AppResult racy(tmk::Tmk& tmk, const RacyParams& p);

}  // namespace tmkgm::apps
